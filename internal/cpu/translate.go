package cpu

import "rtad/internal/isa"

// This file is the translation half of the tiered engine: a discovery pass
// that lifts the straight-line region starting at a given word of the
// immutable program image into a block of pre-lowered micro-ops. Lifting is
// driven entirely by the ISA's op-class metadata (isa.Class) and lowering
// tables (isa.ALUFunc), so the translator holds no opcode semantics of its
// own; anything outside the liftable classes ends the block and executes
// through the generic Step.
//
// Two peephole fusions cover the dominant adjacent pairs of the generated
// workloads:
//
//   - compare + conditional branch (CMP/Bcc) becomes a fused block
//     terminator resolving the branch in-engine, so hot loop back-edges
//     never leave block dispatch;
//   - immediate-form address formation feeding a load/store through the
//     freshly written base register (MOV/ADD/ORR rX, …; LDR/STR …, [rX, #k])
//     becomes one micro-op, with the lead's charges split out (uop.c1) so a
//     faulting access retires the address formation exactly as Step would.

// maxBlockUops caps translated block length. Generated straight-line runs
// are far shorter; the cap bounds translation work per entry point and the
// per-dispatch budget scan.
const maxBlockUops = 128

// translate lifts the region starting at word index idx. It always returns
// a non-nil block; an empty one (noBlock) negatively caches entry points
// that start with a non-liftable instruction.
func (tc *Cache) translate(idx uint32) *block {
	words := tc.prog.Words
	base := tc.prog.Base
	b := &block{pc: base + idx*isa.WordBytes}
	w := idx
	for w < uint32(len(words)) && len(b.code) < maxBlockUops {
		ins, err := isa.Decode(words[w])
		if err != nil {
			break // undecodable word: Step reports the canonical error
		}
		switch ins.Op.Class() {
		case isa.ClassNop:
			b.code = append(b.code, uop{kind: uopNop, n: 1, cyc: uint8(ins.Op.Cycles())})
			w++

		case isa.ClassALU:
			u := uop{
				n: 1, cyc: uint8(ins.Op.Cycles()),
				rd: uint8(ins.Rd), rn: uint8(ins.Rn), fn: ins.Op.ALU(),
			}
			if ins.HasImm {
				u.kind, u.imm = uopALUImm, ins.Imm
			} else {
				u.kind, u.rm = uopALUReg, uint8(ins.Rm)
			}
			if ins.HasImm && w+1 < uint32(len(words)) {
				if next, err := isa.Decode(words[w+1]); err == nil &&
					next.Op.Class() == isa.ClassMem && next.Rn == ins.Rd {
					// Address formation feeds the access's base register:
					// fuse. rm carries the access's data register, imm2 its
					// offset.
					u.c1 = u.cyc
					u.cyc += uint8(next.Op.Cycles())
					u.n = 2
					u.rm = uint8(next.Rd)
					u.imm2 = next.Imm
					if next.Op == isa.LDR {
						u.kind = uopALUImmLdr
					} else {
						u.kind = uopALUImmStr
					}
					b.code = append(b.code, u)
					w += 2
					continue
				}
			}
			b.code = append(b.code, u)
			w++

		case isa.ClassCmp:
			u := uop{n: 1, cyc: uint8(ins.Op.Cycles()), rn: uint8(ins.Rn)}
			if ins.HasImm {
				u.kind, u.imm = uopCmpImm, ins.Imm
			} else {
				u.kind, u.rm = uopCmpReg, uint8(ins.Rm)
			}
			if w+1 < uint32(len(words)) {
				if next, err := isa.Decode(words[w+1]); err == nil && next.Op.IsConditional() {
					// Compare-and-branch terminator: precompute the taken
					// target from the encoding; the executor resolves the
					// direction against live flags.
					u.n = 2
					u.cyc += uint8(next.Op.Cycles())
					u.br = next.Op
					bccPC := base + (w+1)*isa.WordBytes
					u.target = bccPC + isa.WordBytes + uint32(next.Imm)*isa.WordBytes
					if ins.HasImm {
						u.kind = uopCmpImmBcc
					} else {
						u.kind = uopCmpRegBcc
					}
					b.code = append(b.code, u)
					w += 2
					return tc.seal(b, w)
				}
			}
			b.code = append(b.code, u)
			w++

		case isa.ClassMem:
			u := uop{
				n: 1, cyc: uint8(ins.Op.Cycles()),
				rd: uint8(ins.Rd), rn: uint8(ins.Rn), imm: ins.Imm,
			}
			if ins.Op == isa.LDR {
				u.kind = uopLdr
			} else {
				u.kind = uopStr
			}
			b.code = append(b.code, u)
			w++

		default:
			// ClassBranch, ClassTrap, ClassHalt: the terminator executes
			// through Step, exactly as Run's fallback always has.
			return tc.seal(b, w)
		}
	}
	return tc.seal(b, w)
}

// seal finalises a translated block ending before word index end: the
// precomputed whole-block charges and the fall-through address. Blocks that
// lifted nothing collapse to the shared negative-cache sentinel.
func (tc *Cache) seal(b *block, end uint32) *block {
	if len(b.code) == 0 {
		return noBlock
	}
	b.end = tc.prog.Base + end*isa.WordBytes
	for i := range b.code {
		b.instret += int64(b.code[i].n)
		b.cycles += int64(b.code[i].cyc)
	}
	return b
}
