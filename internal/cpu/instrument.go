package cpu

import "rtad/internal/isa"

// Mode selects how branch information is collected from the host, matching
// the five configurations of Fig 6. Baseline runs the raw program; RTAD
// enables the CoreSight path (overhead only via trace-FIFO backpressure);
// the SW_* modes model software instrumentation by executing a dump stub at
// every corresponding event site, exactly as the paper's modified binaries
// execute inserted instructions.
type Mode uint8

// Collection modes.
const (
	ModeBaseline Mode = iota
	ModeRTAD
	ModeSWSys  // strace-style syscall tracing
	ModeSWFunc // per-function-call instrumentation
	ModeSWAll  // per-branch instrumentation

	numModes
)

var modeNames = [numModes]string{
	ModeBaseline: "Baseline", ModeRTAD: "RTAD",
	ModeSWSys: "SW_SYS", ModeSWFunc: "SW_FUNC", ModeSWAll: "SW_ALL",
}

// String returns the paper's label for m.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "mode(?)"
}

// stubCost sums the base cycle costs of a stub's opcodes. Stubs are modelled
// as straight-line code (no taken branches), so no pipeline penalty applies.
func stubCost(ops []isa.Op) int64 {
	var c int64
	for _, op := range ops {
		c += op.Cycles()
	}
	return c
}

// branchDumpStub is the per-branch instrumentation of SW_ALL: store the
// branch record to the trace buffer and bump the cursor. Three
// instructions, executed for *every* branch instruction — which is why
// SW_ALL costs tens of percent on branch-dense code (Fig 6 reports 43.4 %
// geometric mean).
var branchDumpStub = []isa.Op{
	isa.STR, // store PC
	isa.STR, // store target
	isa.ADD, // advance cursor
}

// callDumpStub is the per-call instrumentation of SW_FUNC: record the callee
// address and a timestamp at function entry.
var callDumpStub = []isa.Op{
	isa.STR,
	isa.STR,
	isa.ADD,
	isa.LDR,
}

// syscallTraceCost is the per-syscall cost of strace-style collection: the
// kernel stops the tracee at syscall entry and exit, context-switches to the
// tracer, which reads registers and appends a log record, then resumes. Two
// stops per call, several hundred cycles each on an embedded core.
const syscallTraceCost int64 = 900

// InstrumentationCost returns the extra cycles mode m charges for a branch
// event of kind k. It is the timing contract between the core and Fig 6.
func InstrumentationCost(m Mode, k Kind) int64 {
	switch m {
	case ModeSWAll:
		// Every branch site is instrumented, taken or not.
		return stubCost(branchDumpStub)
	case ModeSWFunc:
		if k == KindCall || k == KindIndCall {
			return stubCost(callDumpStub)
		}
	case ModeSWSys:
		if k == KindSyscall {
			return syscallTraceCost
		}
	}
	return 0
}
