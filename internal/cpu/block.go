package cpu

import (
	"sync/atomic"

	"rtad/internal/isa"
)

// This file is the execution half of the tiered victim-CPU engine: basic
// blocks lifted out of the immutable program image execute as flat micro-op
// arrays with pre-lowered semantics and precomputed charges, and everything
// the translator did not lift (control flow, traps, faults) falls back to
// the generic Step, which remains the single source of truth for
// per-instruction semantics. See translate.go for the discovery/lowering
// pass and DESIGN.md "Tiered victim CPU" for the contract.

// uopKind discriminates the micro-op templates the translator emits. The
// executor dispatches directly on this tag — a flat switch over a dense
// enum, the Go shape of direct threading.
type uopKind uint8

const (
	uopNop       uopKind = iota
	uopALUReg            // rd = fn(regs[rn], regs[rm])
	uopALUImm            // rd = fn(regs[rn], imm)
	uopCmpReg            // flags ← regs[rn] vs regs[rm]
	uopCmpImm            // flags ← regs[rn] vs imm
	uopLdr               // rd = mem[regs[rn]+imm]; can fault
	uopStr               // mem[regs[rn]+imm] = regs[rd]; can fault
	uopALUImmLdr         // fused: rd = fn(regs[rn], imm); rm = mem[regs[rd]+imm2]
	uopALUImmStr         // fused: rd = fn(regs[rn], imm); mem[regs[rd]+imm2] = regs[rm]
	uopCmpRegBcc         // fused terminator: flags ← regs[rn] vs regs[rm]; br on flags
	uopCmpImmBcc         // fused terminator: flags ← regs[rn] vs imm; br on flags
)

// uop is one pre-lowered micro-op. Fused pairs (address formation feeding a
// memory access, compare feeding a conditional branch) occupy one uop with
// n=2; rm doubles as the second destination/source register of fused memory
// pairs, imm2 as their second immediate.
type uop struct {
	kind uopKind
	n    uint8 // instructions retired (words covered): 1, or 2 when fused
	cyc  uint8 // summed base cycle charge of the (possibly fused) pair
	c1   uint8 // lead op's cycle charge alone (fused-pair fault accounting)
	rd   uint8
	rn   uint8
	rm   uint8
	br   isa.Op      // fused conditional-branch opcode (uopCmp*Bcc)
	fn   isa.ALUFunc // pre-lowered ALU semantics (uopALU*)
	imm  int32
	imm2 int32
	// target is the fused conditional branch's taken destination,
	// precomputed from the encoding at translation time.
	target uint32
}

// block is one translated basic block: straight-line micro-ops from the
// entry pc, optionally terminated by a fused compare-and-branch. instret
// and cycles are the precomputed whole-block charges (equal to the sum of
// the member instructions' Step charges).
type block struct {
	pc      uint32 // entry address
	end     uint32 // address after the last covered word
	instret int64
	cycles  int64
	code    []uop
}

// noBlock is the negative-cache sentinel: translation at this pc yields
// nothing liftable (the word is a branch, trap, halt, or undecodable), so
// the dispatcher should go straight to Step without retrying translation.
var noBlock = &block{}

// Cache is a basic-block translation cache over one immutable program
// image, indexed like the predecode cache by (pc-base)/WordBytes. The image
// is write-protected by the threat model (W^X), so translations never need
// invalidation, and the cache may be shared read-mostly by any number of
// CPUs executing the same program — e.g. every session of one deployment.
//
// Concurrent use is safe without locks: slots are filled lazily and
// published with atomic pointer stores. Translation is a pure function of
// the immutable image, so racing fills produce interchangeable blocks and
// last-store-wins is harmless.
type Cache struct {
	prog  *isa.Program
	slots []atomic.Pointer[block]
}

// NewCache builds an empty translation cache for prog. Blocks are
// discovered and translated on first dispatch, one entry point at a time.
func NewCache(prog *isa.Program) *Cache {
	return &Cache{prog: prog, slots: make([]atomic.Pointer[block], len(prog.Words))}
}

// execBlock executes b's micro-ops, retiring at most budget instructions
// (budget ≥ 1), and returns how many retired. On any early exit — budget
// exhausted before a micro-op, or a memory micro-op about to fault — c.pc
// is left at the first unexecuted instruction so the generic path resumes
// with bit-identical architectural state and counter charges; a return of 0
// means the caller must make progress through Step instead.
func (c *CPU) execBlock(b *block, budget int64) int64 {
	if budget >= b.instret {
		return c.execFast(b)
	}
	return c.execSlow(b, budget)
}

// execFast is the full-budget path: charge accounting is deferred — the
// block's presummed cycle and instret charges land once at the end (or just
// before a fused terminator resolves, which is equivalent because the
// terminator is always last) — so the loop carries no per-op accounting and
// no budget checks. A memory micro-op about to fault takes the cold bail
// path, which reconstructs the exact partial charges Step would have made.
// A fused terminator still charges its dynamic costs (taken penalty, mode
// instrumentation, sink stall) through the shared retirement helpers.
func (c *CPU) execFast(b *block) int64 {
	code := b.code
	for i := range code {
		u := &code[i]
		switch u.kind {
		case uopNop:
		case uopALUReg:
			c.regs[u.rd] = u.fn(c.regs[u.rn], c.regs[u.rm])
		case uopALUImm:
			c.regs[u.rd] = u.fn(c.regs[u.rn], uint32(u.imm))
		case uopCmpReg:
			a, o := int32(c.regs[u.rn]), int32(c.regs[u.rm])
			c.flagEQ, c.flagLT = a == o, a < o
		case uopCmpImm:
			a := int32(c.regs[u.rn])
			c.flagEQ, c.flagLT = a == u.imm, a < u.imm
		case uopLdr:
			addr := c.regs[u.rn] + uint32(u.imm)
			if !c.memOK(addr) {
				return c.bailFast(b, i, false)
			}
			c.regs[u.rd] = load32(c.mem, addr)
		case uopStr:
			addr := c.regs[u.rn] + uint32(u.imm)
			if !c.storeOK(addr) {
				return c.bailFast(b, i, false)
			}
			store32(c.mem, addr, c.regs[u.rd])
		case uopALUImmLdr:
			a := u.fn(c.regs[u.rn], uint32(u.imm))
			c.regs[u.rd] = a
			addr := a + uint32(u.imm2)
			if !c.memOK(addr) {
				return c.bailFast(b, i, true)
			}
			c.regs[u.rm] = load32(c.mem, addr)
		case uopALUImmStr:
			a := u.fn(c.regs[u.rn], uint32(u.imm))
			c.regs[u.rd] = a
			addr := a + uint32(u.imm2)
			if !c.storeOK(addr) {
				return c.bailFast(b, i, true)
			}
			store32(c.mem, addr, c.regs[u.rm])
		case uopCmpRegBcc:
			a, o := int32(c.regs[u.rn]), int32(c.regs[u.rm])
			c.flagEQ, c.flagLT = a == o, a < o
			c.cycles += b.cycles
			c.instret += b.instret
			c.execBcc(u, b.end)
			return b.instret
		case uopCmpImmBcc:
			a := int32(c.regs[u.rn])
			c.flagEQ, c.flagLT = a == u.imm, a < u.imm
			c.cycles += b.cycles
			c.instret += b.instret
			c.execBcc(u, b.end)
			return b.instret
		}
	}
	c.cycles += b.cycles
	c.instret += b.instret
	c.pc = b.end
	return b.instret
}

// bailFast is execFast's cold fault exit: micro-op i is about to fault, so
// reconstruct the charges of the already-executed prefix (deferred on the
// fast path) and leave pc at the faulting instruction for Step to report
// the canonical error. When lead is set, the faulting micro-op is a fused
// pair whose address-forming half already committed its register write: it
// retires alone with its split-out charge (u.c1), exactly as Step would.
func (c *CPU) bailFast(b *block, i int, lead bool) int64 {
	var n, cyc int64
	for j := 0; j < i; j++ {
		n += int64(b.code[j].n)
		cyc += int64(b.code[j].cyc)
	}
	if lead {
		cyc += int64(b.code[i].c1)
		n++
	}
	c.cycles += cyc
	c.instret += n
	c.pc = b.pc + uint32(n)*isa.WordBytes
	return n
}

// execSlow is the general path: per-micro-op budget checks and charge
// accounting, memory micro-ops validated before they commit. It is taken on
// quantum boundaries that land inside the block and for every block that
// touches memory.
func (c *CPU) execSlow(b *block, budget int64) int64 {
	var retired int64
	pc := b.pc
	code := b.code
	for i := range code {
		u := &code[i]
		if int64(u.n) > budget-retired {
			c.pc = pc
			return retired
		}
		switch u.kind {
		case uopNop:
		case uopALUReg:
			c.regs[u.rd] = u.fn(c.regs[u.rn], c.regs[u.rm])
		case uopALUImm:
			c.regs[u.rd] = u.fn(c.regs[u.rn], uint32(u.imm))
		case uopCmpReg:
			a, o := int32(c.regs[u.rn]), int32(c.regs[u.rm])
			c.flagEQ, c.flagLT = a == o, a < o
		case uopCmpImm:
			a := int32(c.regs[u.rn])
			c.flagEQ, c.flagLT = a == u.imm, a < u.imm
		case uopLdr:
			addr := c.regs[u.rn] + uint32(u.imm)
			if !c.memOK(addr) {
				c.pc = pc
				return retired
			}
			c.regs[u.rd] = load32(c.mem, addr)
		case uopStr:
			addr := c.regs[u.rn] + uint32(u.imm)
			if !c.storeOK(addr) {
				c.pc = pc
				return retired
			}
			store32(c.mem, addr, c.regs[u.rd])
		case uopALUImmLdr:
			a := u.fn(c.regs[u.rn], uint32(u.imm))
			c.regs[u.rd] = a
			addr := a + uint32(u.imm2)
			if !c.memOK(addr) {
				// The address-forming instruction retires alone; the load
				// faults in Step with the canonical error.
				c.cycles += int64(u.c1)
				c.instret++
				c.pc = pc + isa.WordBytes
				return retired + 1
			}
			c.regs[u.rm] = load32(c.mem, addr)
		case uopALUImmStr:
			a := u.fn(c.regs[u.rn], uint32(u.imm))
			c.regs[u.rd] = a
			addr := a + uint32(u.imm2)
			if !c.storeOK(addr) {
				c.cycles += int64(u.c1)
				c.instret++
				c.pc = pc + isa.WordBytes
				return retired + 1
			}
			store32(c.mem, addr, c.regs[u.rm])
		case uopCmpRegBcc:
			a, o := int32(c.regs[u.rn]), int32(c.regs[u.rm])
			c.flagEQ, c.flagLT = a == o, a < o
			c.cycles += int64(u.cyc)
			c.instret += int64(u.n)
			c.execBcc(u, pc+2*isa.WordBytes)
			return retired + int64(u.n)
		case uopCmpImmBcc:
			a := int32(c.regs[u.rn])
			c.flagEQ, c.flagLT = a == u.imm, a < u.imm
			c.cycles += int64(u.cyc)
			c.instret += int64(u.n)
			c.execBcc(u, pc+2*isa.WordBytes)
			return retired + int64(u.n)
		}
		c.cycles += int64(u.cyc)
		c.instret += int64(u.n)
		retired += int64(u.n)
		pc += uint32(u.n) * isa.WordBytes
	}
	c.pc = pc
	return retired
}

// execBcc resolves a fused compare-and-branch terminator whose base cycle
// and instret charges are already applied: fall is the not-taken
// continuation (the address after the pair), and the branch retires through
// the same takeTo/retireBranch helpers Step uses, so penalties, events,
// instrumentation and stall charges are bit-identical.
func (c *CPU) execBcc(u *uop, fall uint32) {
	bccPC := fall - isa.WordBytes
	if taken, _ := isa.CondTaken(u.br, c.flagEQ, c.flagLT); taken {
		c.pc = c.takeTo(bccPC, u.target, KindDirect)
		return
	}
	c.retireBranch(bccPC, fall, KindDirect, false)
	c.pc = fall
}

// memOK reports whether a word access at addr is architecturally valid,
// mirroring loadWord's checks without constructing an error.
func (c *CPU) memOK(addr uint32) bool {
	return addr%4 == 0 && int(addr)+4 <= len(c.mem)
}

// storeOK additionally applies the W^X rule, mirroring storeWord.
func (c *CPU) storeOK(addr uint32) bool {
	if !c.memOK(addr) {
		return false
	}
	return !c.wx || !c.prog.Contains(addr)
}

func load32(mem []byte, addr uint32) uint32 {
	return uint32(mem[addr]) | uint32(mem[addr+1])<<8 |
		uint32(mem[addr+2])<<16 | uint32(mem[addr+3])<<24
}

func store32(mem []byte, addr, v uint32) {
	mem[addr] = byte(v)
	mem[addr+1] = byte(v >> 8)
	mem[addr+2] = byte(v >> 16)
	mem[addr+3] = byte(v >> 24)
}
