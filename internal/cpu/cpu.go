package cpu

import (
	"fmt"

	"rtad/internal/isa"
)

// Config sizes a core.
type Config struct {
	MemBytes int  // data RAM size (byte-addressable, word-aligned accesses)
	Mode     Mode // collection mode (Fig 6)
	Sink     Sink // branch-event consumer; may be nil
	// WXProtect enforces the threat model's W^X rule (§III-C): stores to
	// addresses inside the program image fault, so adversaries cannot
	// rewrite code and must divert control flow through legitimate
	// instructions — the attack class RTAD is built to catch.
	WXProtect bool
	// Cache optionally shares a basic-block translation cache with other
	// cores executing the same program (it must have been built by NewCache
	// over the identical *isa.Program; a mismatched cache is ignored and a
	// private one is built instead). Sessions of one deployment share a
	// cache so each block is translated once per deployment, not once per
	// session; sharing is lock-free and race-free — see Cache.
	Cache *Cache
}

// DefaultMemBytes is a comfortable data RAM for the generated workloads.
const DefaultMemBytes = 1 << 20

// CPU is one simulated host core. It is not safe for concurrent use; the
// whole SoC simulation is single-threaded by design (see internal/sim).
type CPU struct {
	prog *isa.Program
	mem  []byte
	// Predecoded program image, indexed by (pc-base)/WordBytes: the image
	// is immutable (W^X is the threat model), so each word is decoded once
	// at construction and the fetch/execute loop between branch events runs
	// on table lookups with no per-instruction decode. Words that fail to
	// decode stay marked invalid and fall back to isa.Decode for the
	// canonical error.
	dec   []isa.Instruction
	decOK []bool
	base  uint32
	// cache is the tiered engine's basic-block translation cache (possibly
	// shared with other cores running the same program). Run dispatches
	// whole blocks from it and falls back to Step between them.
	cache *Cache

	regs [isa.NumRegs]uint32
	pc   uint32
	// Comparison flags, set by CMP: the signed relation of rn to the
	// operand. Enough to implement BEQ/BNE/BLT/BGE.
	flagEQ bool
	flagLT bool

	mode Mode
	sink Sink
	wx   bool

	cycles      int64
	instret     int64
	branchSeq   int64
	stallCycles int64 // cycles lost to sink backpressure (RTAD overhead)
	instrCycles int64 // cycles spent in instrumentation stubs (SW_* overhead)
	kindCounts  [numKinds]int64
	// instrCost memoizes InstrumentationCost(mode, kind) — a pure function
	// of construction-time state — off the branch retirement path.
	instrCost [numKinds]int64
	halted    bool
}

// New builds a core around an assembled program. The stack pointer starts at
// the top of RAM; R10 points at the middle of RAM as the workload data base
// (the workload generator's convention).
func New(prog *isa.Program, cfg Config) *CPU {
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = DefaultMemBytes
	}
	c := &CPU{
		prog:  prog,
		mem:   make([]byte, cfg.MemBytes),
		dec:   make([]isa.Instruction, len(prog.Words)),
		decOK: make([]bool, len(prog.Words)),
		base:  prog.Base,
		mode:  cfg.Mode,
		sink:  cfg.Sink,
		wx:    cfg.WXProtect,
		pc:    prog.Base,
	}
	for i, w := range prog.Words {
		if ins, err := isa.Decode(w); err == nil {
			c.dec[i], c.decOK[i] = ins, true
		}
	}
	if cfg.Cache != nil && cfg.Cache.prog == prog {
		c.cache = cfg.Cache
	} else {
		c.cache = NewCache(prog)
	}
	for k := Kind(0); k < numKinds; k++ {
		c.instrCost[k] = InstrumentationCost(cfg.Mode, k)
	}
	c.regs[isa.SP] = uint32(cfg.MemBytes - 16)
	c.regs[isa.R10] = uint32(cfg.MemBytes / 2)
	return c
}

// Reg returns the value of register r.
func (c *CPU) Reg(r isa.Reg) uint32 { return c.regs[r] }

// SetReg sets register r, used by tests and loaders.
func (c *CPU) SetReg(r isa.Reg, v uint32) { c.regs[r] = v }

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.pc }

// Cycles returns the total elapsed CPU cycles, including stall and
// instrumentation time.
func (c *CPU) Cycles() int64 { return c.cycles }

// Instret returns the number of retired instructions (stub instructions are
// accounted as cycles, not retirements, so instruction counts stay
// comparable across modes).
func (c *CPU) Instret() int64 { return c.instret }

// StallCycles returns cycles lost to trace-sink backpressure.
func (c *CPU) StallCycles() int64 { return c.stallCycles }

// InstrumentationCycles returns cycles spent executing SW_* dump stubs.
func (c *CPU) InstrumentationCycles() int64 { return c.instrCycles }

// BranchCount returns how many transfers of kind k have retired.
func (c *CPU) BranchCount(k Kind) int64 { return c.kindCounts[k] }

// Halted reports whether a HALT instruction has retired.
func (c *CPU) Halted() bool { return c.halted }

func (c *CPU) loadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 || int(addr)+4 > len(c.mem) {
		return 0, fmt.Errorf("cpu: bad load address %#x at pc %#x", addr, c.pc)
	}
	return uint32(c.mem[addr]) | uint32(c.mem[addr+1])<<8 |
		uint32(c.mem[addr+2])<<16 | uint32(c.mem[addr+3])<<24, nil
}

func (c *CPU) storeWord(addr, v uint32) error {
	if addr%4 != 0 || int(addr)+4 > len(c.mem) {
		return fmt.Errorf("cpu: bad store address %#x at pc %#x", addr, c.pc)
	}
	if c.wx && c.prog.Contains(addr) {
		return fmt.Errorf("cpu: W^X violation: store to code address %#x at pc %#x", addr, c.pc)
	}
	c.mem[addr] = byte(v)
	c.mem[addr+1] = byte(v >> 8)
	c.mem[addr+2] = byte(v >> 16)
	c.mem[addr+3] = byte(v >> 24)
	return nil
}

// retireBranch reports a branch event to the sink and charges any
// mode-specific instrumentation cost.
func (c *CPU) retireBranch(pc, target uint32, kind Kind, taken bool) {
	c.kindCounts[kind]++
	if cost := c.instrCost[kind]; cost > 0 {
		c.cycles += cost
		c.instrCycles += cost
	}
	if c.sink != nil && c.mode != ModeBaseline {
		ev := BranchEvent{
			Seq: c.branchSeq, Cycle: c.cycles,
			PC: pc, Target: target, Kind: kind, Taken: taken,
		}
		c.branchSeq++
		if stall := c.sink.BranchRetired(ev); stall > 0 {
			c.cycles += stall
			c.stallCycles += stall
		}
	}
}

// takeTo retires a taken transfer to target and returns the new PC.
func (c *CPU) takeTo(pc, target uint32, kind Kind) uint32 {
	c.cycles += isa.BranchTakenPenalty
	c.retireBranch(pc, target, kind, true)
	return target
}

// fetchSlow classifies a fetch that missed the predecode cache and returns
// its canonical error: a misaligned PC (an indirect transfer landed off a
// word boundary — reported explicitly, not as an out-of-image fetch), a PC
// outside the program image, or a word that never decoded.
func (c *CPU) fetchSlow() error {
	if c.pc%isa.WordBytes != 0 {
		return fmt.Errorf("cpu: misaligned pc %#x", c.pc)
	}
	w, err := c.prog.WordAt(c.pc)
	if err != nil {
		return err
	}
	if _, err := isa.Decode(w); err != nil {
		return fmt.Errorf("cpu: at pc %#x: %v", c.pc, err)
	}
	// Unreachable: an aligned, in-bounds, decodable word is always cached.
	return fmt.Errorf("cpu: at pc %#x: predecode cache miss", c.pc)
}

// Step executes one instruction and returns an error on an architectural
// fault (bad fetch, bad memory access). Stepping a halted core is a no-op.
func (c *CPU) Step() error {
	if c.halted {
		return nil
	}
	pc := c.pc
	idx := (pc - c.base) / isa.WordBytes
	if pc%isa.WordBytes != 0 || pc < c.base || idx >= uint32(len(c.dec)) || !c.decOK[idx] {
		return c.fetchSlow()
	}
	ins := c.dec[idx]

	next := pc + isa.WordBytes
	c.cycles += ins.Op.Cycles()
	c.instret++

	// ALU second operand (register or immediate form). Hoisted out of the
	// per-op cases so the switch body stays closure-free: closures here sit
	// on the hottest path of the whole co-simulation.
	op2 := c.regs[ins.Rm]
	if ins.HasImm {
		op2 = uint32(ins.Imm)
	}

	switch ins.Op {
	case isa.NOP:
	case isa.HALT:
		c.halted = true
	case isa.ADD, isa.SUB, isa.AND, isa.ORR, isa.EOR,
		isa.LSL, isa.LSR, isa.ASR, isa.MUL, isa.MOV, isa.MVN:
		// One definition of the data semantics: the same lowered functions
		// the block translator compiles into micro-ops (isa.ALUFunc).
		c.regs[ins.Rd] = isa.EvalALU(ins.Op, c.regs[ins.Rn], op2)
	case isa.CMP:
		a, b := int32(c.regs[ins.Rn]), int32(op2)
		c.flagEQ = a == b
		c.flagLT = a < b
	case isa.LDR:
		v, err := c.loadWord(c.regs[ins.Rn] + uint32(ins.Imm))
		if err != nil {
			return err
		}
		c.regs[ins.Rd] = v
	case isa.STR:
		if err := c.storeWord(c.regs[ins.Rn]+uint32(ins.Imm), c.regs[ins.Rd]); err != nil {
			return err
		}

	case isa.B:
		next = c.takeTo(pc, next+uint32(ins.Imm)*isa.WordBytes, KindDirect)
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		taken, _ := isa.CondTaken(ins.Op, c.flagEQ, c.flagLT)
		if taken {
			next = c.takeTo(pc, next+uint32(ins.Imm)*isa.WordBytes, KindDirect)
		} else {
			// Not-taken waypoints still retire an atom-worthy event.
			c.retireBranch(pc, next, KindDirect, false)
		}
	case isa.BL:
		c.regs[isa.LR] = next
		next = c.takeTo(pc, next+uint32(ins.Imm)*isa.WordBytes, KindCall)
	case isa.BLR:
		c.regs[isa.LR] = next
		next = c.takeTo(pc, c.regs[ins.Rm], KindIndCall)
	case isa.BR:
		next = c.takeTo(pc, c.regs[ins.Rm], KindIndirect)
	case isa.RET:
		next = c.takeTo(pc, c.regs[isa.LR], KindReturn)
	case isa.SVC:
		// The kernel entry/exit cost is in SVC's base cycle count; the
		// event target encodes the service number for feature mapping.
		c.retireBranch(pc, SyscallTarget(ins.Imm), KindSyscall, true)
	default:
		return fmt.Errorf("cpu: unimplemented opcode %v at %#x", ins.Op, pc)
	}

	c.pc = next
	return nil
}

// Run executes up to maxInstr instructions, stopping early at HALT or on an
// architectural fault. It returns the number of instructions retired during
// this call.
//
// This is the tiered engine's dispatch loop: execution proceeds whole basic
// blocks at a time from the translation cache (translated lazily, entry
// point by entry point — see translate.go), with precise budget accounting
// across partial-block quantum boundaries. Anything the block engine does
// not handle — unfused control flow, traps, faults, halts, unliftable entry
// points — executes through the generic Step, which is the single source of
// truth for per-instruction semantics. The two tiers are bit-identical in
// architectural state, counters and retired event streams (see
// FuzzCPUTiers and the equivalence suites).
func (c *CPU) Run(maxInstr int64) (int64, error) {
	start := c.instret
	end := start + maxInstr
	tc := c.cache
	for !c.halted && c.instret < end {
		pc := c.pc
		idx := (pc - c.base) / isa.WordBytes
		if pc%isa.WordBytes == 0 && pc >= c.base && idx < uint32(len(tc.slots)) {
			b := tc.slots[idx].Load()
			if b == nil {
				b = tc.translate(idx)
				tc.slots[idx].Store(b)
			}
			if len(b.code) != 0 && c.execBlock(b, end-c.instret) > 0 {
				continue
			}
			// Zero progress: the entry point is unliftable (noBlock), the
			// first micro-op needs more budget than remains (a fused pair
			// at a 1-instruction quantum edge), or it is about to fault.
			// Step retires the lead instruction or reports the canonical
			// error.
		}
		if err := c.Step(); err != nil {
			return c.instret - start, err
		}
	}
	return c.instret - start, nil
}

// Stats is a snapshot of the core's performance counters.
type Stats struct {
	Cycles      int64
	Instret     int64
	StallCycles int64
	InstrCycles int64
	Branches    int64 // all retired branch instructions (incl. not-taken)
	Calls       int64
	Returns     int64
	Indirects   int64
	Syscalls    int64
}

// Stats returns the current counter snapshot.
func (c *CPU) Stats() Stats {
	var total int64
	for _, n := range c.kindCounts {
		total += n
	}
	return Stats{
		Cycles:      c.cycles,
		Instret:     c.instret,
		StallCycles: c.stallCycles,
		InstrCycles: c.instrCycles,
		Branches:    total,
		Calls:       c.kindCounts[KindCall] + c.kindCounts[KindIndCall],
		Returns:     c.kindCounts[KindReturn],
		Indirects:   c.kindCounts[KindIndirect] + c.kindCounts[KindIndCall],
		Syscalls:    c.kindCounts[KindSyscall],
	}
}
