package cpu

import (
	"strings"
	"testing"

	"rtad/internal/isa"
)

// straightSrc maximises block length: a 64-instruction unrolled body of
// ALU ops and fused address-formation/memory pairs, re-entered by one
// unconditional back-edge. This is the block engine's best case.
var straightSrc = "mov r1, #0\nloop:\n" + strings.Repeat(`
	add r2, r1, #8
	ldr r3, [r2, #0]
	add r4, r3, #1
	str r4, [r2, #4]
	eor r5, r4, r3
	lsl r6, r5, #2
	orr r1, r6, #4
	and r1, r1, #252
`, 8) + "	b loop\n"

// branchySrcBench is branch-dominated: three-instruction blocks ending in a
// fused CMP+Bcc, the block engine's worst case and the paper grid's common
// case (hot loop back-edges).
const branchySrcBench = `
	mov r0, #0
loop:
	add r0, r0, #1
	cmp r0, #64
	blt loop
	mov r0, #0
	b loop
`

// BenchmarkCPURun measures the tiered engine's sustained interpretation
// rate on straight-line and branchy mixes. The perf-smoke CI job runs it
// and the zero-alloc assertion guards the block engine's steady state.
func BenchmarkCPURun(b *testing.B) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"straight", straightSrc},
		{"branchy", branchySrcBench},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prog, err := isa.Assemble(tc.src, 0x8000)
			if err != nil {
				b.Fatal(err)
			}
			null := SinkFunc(func(BranchEvent) int64 { return 0 })
			c := New(prog, Config{Mode: ModeRTAD, Sink: null, WXProtect: true})
			// Warm the translation cache — including the suffix blocks that
			// quantum boundaries create at every in-block offset (1-instr
			// quanta walk each pc) — then pin the steady state to zero heap
			// allocations per dispatch.
			for i := 0; i < 256; i++ {
				if _, err := c.Run(1); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := c.Run(1 << 16); err != nil {
				b.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				if _, err := c.Run(1 << 12); err != nil {
					b.Fatal(err)
				}
			}); allocs > 0 {
				b.Fatalf("block engine allocates %.2f objects/op in steady state, want 0", allocs)
			}
			const instrPerOp = 1 << 20
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(instrPerOp); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			mips := float64(b.N) * instrPerOp / 1e6 / b.Elapsed().Seconds()
			b.ReportMetric(mips, "Minstr/s")
		})
	}
}
