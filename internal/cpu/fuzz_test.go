package cpu

import (
	"reflect"
	"testing"

	"rtad/internal/isa"
)

// fuzzProgram deterministically derives a small program from fuzz input:
// a biased opcode mix heavy on the liftable classes (ALU, CMP, memory) with
// direct and conditional branches constrained to land inside the image, so
// runs are mostly well-defined but still reach every fault and fallback
// path. Returns nil when the input cannot produce an encodable program.
func fuzzProgram(data []byte) *isa.Program {
	if len(data) < 8 {
		return nil
	}
	n := 16 + int(data[0])%48
	pos := 1
	next := func() byte {
		v := data[pos%len(data)]
		pos++
		return v
	}
	b := isa.NewBuilder(0x8000)
	// A couple of in-range memory bases so loads/stores are not all faults.
	b.MovImm(isa.R1, 512)
	b.MovImm(isa.R2, 2048)
	const prelude = 2
	aluOps := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.ORR, isa.EOR,
		isa.LSL, isa.LSR, isa.ASR, isa.MUL, isa.MOV, isa.MVN,
	}
	condOps := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
	for i := 0; i < n; i++ {
		rd := isa.Reg(next() % uint8(isa.NumRegs))
		rn := isa.Reg(next() % uint8(isa.NumRegs))
		rm := isa.Reg(next() % uint8(isa.NumRegs))
		// Branch offsets land on a word inside [0, prelude+n+1): the whole
		// generated body including the trailing HALT.
		branchImm := func(v byte) int32 {
			target := int32(int(v) % (prelude + n + 1))
			return target - int32(prelude+i) - 1
		}
		switch op := next() % 32; {
		case op < 8:
			b.Op3(aluOps[int(op)%len(aluOps)], rd, rn, rm)
		case op < 14:
			b.Op3i(aluOps[int(next())%len(aluOps)], rd, rn, int32(int8(next())))
		case op < 16:
			b.MovImm(rd, int32(int8(next())))
		case op < 18:
			b.Cmp(rn, rm)
		case op < 20:
			b.CmpImm(rn, int32(int8(next())))
		case op < 23:
			b.Ldr(rd, rn, int32(int8(next())))
		case op < 26:
			b.Str(rd, rn, int32(int8(next())))
		case op < 28:
			b.Emit(isa.Instruction{Op: condOps[int(next())%len(condOps)], Imm: branchImm(next())})
		case op < 29:
			b.Emit(isa.Instruction{Op: isa.B, Imm: branchImm(next())})
		case op < 30:
			b.Emit(isa.Instruction{Op: isa.BL, Imm: branchImm(next())})
		case op < 31:
			b.Svc(int32(next() % 16))
		default:
			// Indirect transfers: mostly fault or loop, both tiers must
			// agree either way.
			switch next() % 3 {
			case 0:
				b.Ret()
			case 1:
				b.Br(rm)
			default:
				b.Blr(rm)
			}
		}
	}
	b.Emit(isa.Instruction{Op: isa.HALT})
	prog, err := b.Build()
	if err != nil {
		return nil
	}
	return prog
}

// FuzzCPUTiers differentially tests the execution tiers: the same program
// under the same config runs through the Step-only reference, the block
// engine at full budget, the block engine at small quanta, and the block
// engine over a shared pre-warmed cache. All four must retire bit-identical
// registers, memory, PC, flags, counters, event streams, and errors.
func FuzzCPUTiers(f *testing.F) {
	f.Add([]byte("straight-line alu mix 0123456789 abcdefghijklmnopqrstuvwxyz"))
	f.Add([]byte("loopy: branches and compares RRRRRRRRRRRR <<<< >>>> ===="))
	f.Add([]byte{0x40, 0xff, 0x13, 0x80, 0x7f, 0x02, 0x55, 0xaa, 0x31, 0x17, 0xfe, 0x60})
	f.Add([]byte("mem heavy \x17\x17\x17\x17\x17\x17\x17\x17\x17\x17\x17\x17\x17\x17"))
	f.Add([]byte("\x05faults: \xff\xff\xff\xff indirect \x1f\x1f\x1f\x1f\x1f\x1f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		if prog == nil {
			t.Skip("unencodable input")
		}
		mode := []Mode{ModeBaseline, ModeRTAD, ModeSWAll}[int(data[1])%3]
		wx := data[2]&1 == 0
		quantum := 1 + int64(data[3]%7)
		const budget = 4096
		type result struct {
			state  cpuState
			events []BranchEvent
			n      int64
			err    string
		}
		exec := func(f func(c *CPU) (int64, error), cache *Cache) result {
			sink := &CollectSink{}
			c := New(prog, Config{Mode: mode, Sink: sink, WXProtect: wx, Cache: cache})
			n, err := f(c)
			r := result{state: snapshot(c), events: sink.Events, n: n}
			if err != nil {
				r.err = err.Error()
			}
			return r
		}
		chunked := func(c *CPU) (int64, error) {
			var total int64
			for total < budget && !c.Halted() {
				q := quantum
				if rem := budget - total; q > rem {
					q = rem
				}
				n, err := c.Run(q)
				total += n
				if err != nil {
					return total, err
				}
				if n == 0 {
					break
				}
			}
			return total, nil
		}
		ref := exec(func(c *CPU) (int64, error) { return stepRun(c, budget) }, nil)
		shared := NewCache(prog)
		for name, got := range map[string]result{
			"block-full":    exec(func(c *CPU) (int64, error) { return c.Run(budget) }, nil),
			"block-chunked": exec(chunked, nil),
			"block-shared":  exec(chunked, shared),
		} {
			if got.state != ref.state {
				t.Errorf("%s: state diverged\n got %+v\nwant %+v", name, got.state, ref.state)
			}
			if got.n != ref.n {
				t.Errorf("%s: retired %d, want %d", name, got.n, ref.n)
			}
			if got.err != ref.err {
				t.Errorf("%s: error %q, want %q", name, got.err, ref.err)
			}
			if !reflect.DeepEqual(got.events, ref.events) {
				t.Errorf("%s: event stream diverged (%d vs %d events)",
					name, len(got.events), len(ref.events))
			}
		}
	})
}
