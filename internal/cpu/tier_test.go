package cpu

import (
	"reflect"
	"sync"
	"testing"

	"rtad/internal/isa"
)

// stepRun executes through Step only, with Run's budget semantics: the
// tier-0 reference every block-engine test and the differential fuzzer
// compare against.
func stepRun(c *CPU, maxInstr int64) (int64, error) {
	start := c.instret
	end := start + maxInstr
	for !c.halted && c.instret < end {
		if err := c.Step(); err != nil {
			return c.instret - start, err
		}
	}
	return c.instret - start, nil
}

// cpuState is a full architectural+counter snapshot for tier comparisons.
type cpuState struct {
	regs           [isa.NumRegs]uint32
	pc             uint32
	flagEQ, flagLT bool
	halted         bool
	stats          Stats
	mem            string
}

func snapshot(c *CPU) cpuState {
	return cpuState{
		regs: c.regs, pc: c.pc,
		flagEQ: c.flagEQ, flagLT: c.flagLT,
		halted: c.halted, stats: c.Stats(),
		mem: string(c.mem),
	}
}

// branchySrc exercises every fusion shape and fallback: a counted loop with
// a fused CMP+Bcc back-edge, fused address formation feeding loads and
// stores, an unfused register-form load, a call/return pair and a syscall.
const branchySrc = `
	mov r0, #0       ; sum
	mov r1, #1       ; i
	mov r5, #64      ; array base
loop:
	add r0, r0, r1
	mov r2, #64
	str r0, [r2, #4] ; fused MOV+STR
	ldr r3, [r2, #4] ; unfused LDR (r2 not freshly written)
	add r4, r5, #8
	ldr r6, [r4, #0] ; fused ADD+LDR
	bl  double
	add r1, r1, #1
	cmp r1, #10
	blt loop         ; fused CMP+Bcc back-edge
	svc #3
	halt
double:
	lsl r3, r3, #1
	ret
`

func TestMisalignedPCError(t *testing.T) {
	b := isa.NewBuilder(0x8000)
	b.LoadConst(isa.R0, 0x8002)
	b.Br(isa.R0)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const want = "cpu: misaligned pc 0x8002"
	for _, tc := range []struct {
		name string
		exec func(c *CPU) error
	}{
		{"run", func(c *CPU) error { _, err := c.Run(100); return err }},
		{"step", func(c *CPU) error { _, err := stepRun(c, 100); return err }},
	} {
		c := New(prog, Config{})
		err := tc.exec(c)
		if err == nil || err.Error() != want {
			t.Errorf("%s: error = %v, want %q", tc.name, err, want)
		}
	}
}

// TestTierIdentityBranchy proves the block engine and the Step interpreter
// retire bit-identical state, counters and event streams on a workload that
// crosses every fusion and fallback path — at a single full-budget call and
// at pathological 1-instruction quanta landing inside every block and fused
// pair.
func TestTierIdentityBranchy(t *testing.T) {
	prog := mustAssemble(t, branchySrc)
	runners := []struct {
		name string
		exec func(c *CPU) error
	}{
		{"step-only", func(c *CPU) error { _, err := stepRun(c, 1<<20); return err }},
		{"block-full", func(c *CPU) error { _, err := c.Run(1 << 20); return err }},
		{"block-quantum-1", func(c *CPU) error {
			for !c.Halted() {
				if _, err := c.Run(1); err != nil {
					return err
				}
			}
			return nil
		}},
		{"block-quantum-3", func(c *CPU) error {
			for !c.Halted() {
				if _, err := c.Run(3); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	var ref cpuState
	var refEvents []BranchEvent
	for i, r := range runners {
		sink := &CollectSink{}
		c := New(prog, Config{Mode: ModeRTAD, Sink: sink, WXProtect: true})
		if err := r.exec(c); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		got := snapshot(c)
		if i == 0 {
			ref, refEvents = got, sink.Events
			continue
		}
		if got != ref {
			t.Errorf("%s: state diverged\n got %+v\nwant %+v", r.name, got, ref)
		}
		if !reflect.DeepEqual(sink.Events, refEvents) {
			t.Errorf("%s: event stream diverged (%d vs %d events)",
				r.name, len(sink.Events), len(refEvents))
		}
	}
}

// TestFusedPairFaultAccounting pins the contract that a fault inside a
// fused pair charges exactly what Step charges: the lead address-forming
// instruction retires (register write, cycles, instret), then the memory
// access faults with the canonical error and Step's fault-time charges.
func TestFusedPairFaultAccounting(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *isa.Builder)
		wx    bool
	}{
		{
			// mov r0,#2 ; ldr r1,[r0] — fused, misaligned load address.
			name: "ldr-misaligned",
			build: func(b *isa.Builder) {
				b.MovImm(isa.R0, 2)
				b.Ldr(isa.R1, isa.R0, 0)
				b.Emit(isa.Instruction{Op: isa.HALT})
			},
		},
		{
			// lsl r0,r0,#15 → 0x8000 ; str — fused, W^X store fault.
			name: "str-wx",
			wx:   true,
			build: func(b *isa.Builder) {
				b.MovImm(isa.R0, 1)
				b.Op3i(isa.LSL, isa.R0, isa.R0, 15)
				b.Str(isa.R1, isa.R0, 0)
				b.Emit(isa.Instruction{Op: isa.HALT})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := isa.NewBuilder(0x8000)
			tc.build(b)
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{WXProtect: tc.wx}
			refC := New(prog, cfg)
			refN, refErr := stepRun(refC, 100)
			if refErr == nil {
				t.Fatal("reference run did not fault")
			}
			blkC := New(prog, cfg)
			blkN, blkErr := blkC.Run(100)
			if blkErr == nil || blkErr.Error() != refErr.Error() {
				t.Fatalf("error = %v, want %v", blkErr, refErr)
			}
			if blkN != refN {
				t.Errorf("retired %d, want %d", blkN, refN)
			}
			if got, want := snapshot(blkC), snapshot(refC); got != want {
				t.Errorf("state diverged\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestQuantumEdgeInsideFusedPair drives a 1-instruction budget straight into
// a fused CMP+Bcc: the compare must retire alone under the quantum and the
// branch must resolve on the next call with identical charges.
func TestQuantumEdgeInsideFusedPair(t *testing.T) {
	src := `
		mov r0, #5
		cmp r0, #5
		beq done
		mov r1, #99
	done:
		halt
	`
	prog := mustAssemble(t, src)
	ref := New(prog, Config{Mode: ModeRTAD, Sink: &CollectSink{}})
	if _, err := stepRun(ref, 1<<20); err != nil {
		t.Fatal(err)
	}
	c := New(prog, Config{Mode: ModeRTAD, Sink: &CollectSink{}})
	var total int64
	for !c.Halted() {
		n, err := c.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("Run(1) retired %d, want 1", n)
		}
		total += n
	}
	if got, want := snapshot(c), snapshot(ref); got != want {
		t.Errorf("state diverged\n got %+v\nwant %+v", got, want)
	}
	if total != ref.Instret() {
		t.Errorf("retired %d total, want %d", total, ref.Instret())
	}
}

// TestSharedCacheAcrossCores proves the deployment-sharing contract: many
// cores over one Cache, concurrently and lazily filling it, all retire the
// reference stream. Run under -race in CI, this is the proof that the
// lock-free slot publication is sound.
func TestSharedCacheAcrossCores(t *testing.T) {
	prog := mustAssemble(t, branchySrc)
	ref := New(prog, Config{})
	if _, err := stepRun(ref, 1<<20); err != nil {
		t.Fatal(err)
	}
	want := snapshot(ref)
	shared := NewCache(prog)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	states := make([]cpuState, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := New(prog, Config{Cache: shared})
			if c.cache != shared {
				errs[i] = errCacheNotShared
				return
			}
			_, errs[i] = c.Run(1 << 20)
			states[i] = snapshot(c)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("core %d: %v", i, err)
		}
		if states[i] != want {
			t.Errorf("core %d diverged\n got %+v\nwant %+v", i, states[i], want)
		}
	}
}

var errCacheNotShared = errorString("config cache was not adopted")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestMismatchedCacheIgnored: a cache built over a different program must
// not be adopted — a private one is built instead.
func TestMismatchedCacheIgnored(t *testing.T) {
	progA := mustAssemble(t, "halt")
	progB := mustAssemble(t, branchySrc)
	c := New(progB, Config{Cache: NewCache(progA)})
	if c.cache == nil || c.cache.prog != progB {
		t.Fatal("mismatched cache was adopted or none built")
	}
	if _, err := c.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
}
