package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	s.Stop()
	s.Stop() // idempotent

	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestInertSession(t *testing.T) {
	s, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	var nilS *Session
	nilS.Stop() // nil-safe
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
