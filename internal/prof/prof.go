// Package prof is the CLI-side profiling helper: it turns the conventional
// -cpuprofile/-memprofile flag pair into a Session whose Stop method is safe
// to call on every exit path. The simulator CLIs exit through os.Exit in
// many places (flag errors, run failures), which skips deferred calls — so
// Stop is idempotent and the mains route all exits through it, guaranteeing
// the profile files are flushed and valid for `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the active profile sinks. The zero value (or a nil *Session)
// is inert: Stop is a no-op, so callers need no conditionals.
type Session struct {
	cpuFile *os.File
	memPath string
	stopped bool
}

// Start begins CPU profiling to cpuPath and/or arranges a heap profile to be
// written to memPath at Stop. Empty paths disable the respective profile; an
// all-empty call returns an inert session.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop flushes and closes the active profiles. It is idempotent and nil-safe;
// errors are reported on stderr rather than returned because every caller is
// already on an exit path.
func (s *Session) Stop() {
	if s == nil || s.stopped {
		return
	}
	s.stopped = true
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prof: cpu profile: %v\n", err)
		}
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prof: mem profile: %v\n", err)
			return
		}
		// An up-to-date heap picture: collect garbage so the profile shows
		// live objects, not whatever the last GC cycle left behind.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "prof: mem profile: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prof: mem profile: %v\n", err)
		}
	}
}

// Exit stops the session and exits with code: the one-liner for CLI error
// paths (`prof.Exit(s, 1)` instead of `os.Exit(1)`).
func Exit(s *Session, code int) {
	s.Stop()
	os.Exit(code)
}
