package reconstruct

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/isa"
	"rtad/internal/ptm"
	"rtad/internal/workload"
)

// collectTrace runs a workload with the PTM in the given mode, returning the
// ground-truth events and the raw trace bytes.
func collectTrace(t *testing.T, bench string, broadcast bool, instr int64) (*isa.Program, []cpu.BranchEvent, []byte) {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	prog, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: broadcast})
	var truth []cpu.BranchEvent
	var stream []byte
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		truth = append(truth, ev)
		stream = append(stream, enc.Encode(ev)...)
		return 0
	})
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
	if _, err := c.Run(instr); err != nil {
		t.Fatal(err)
	}
	stream = append(stream, enc.Flush()...)
	return prog, truth, stream
}

func TestReconstructionMatchesGroundTruth(t *testing.T) {
	for _, bench := range []string{"458.sjeng", "456.hmmer", "471.omnetpp"} {
		prog, truth, stream := collectTrace(t, bench, false, 60_000)
		got, stats, err := DecodeTrace(prog, stream)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if len(got) != len(truth) {
			t.Fatalf("%s: recovered %d transfers, ground truth %d", bench, len(got), len(truth))
		}
		for i := range truth {
			want := Branch{PC: truth[i].PC, Target: truth[i].Target, Kind: truth[i].Kind, Taken: truth[i].Taken}
			// Not-taken events carry the fallthrough as target in both.
			if got[i] != want {
				t.Fatalf("%s: transfer %d = %+v, want %+v", bench, i, got[i], want)
			}
		}
		if stats.Atoms == 0 || stats.Addresses == 0 {
			t.Errorf("%s: stats %+v implausible", bench, stats)
		}
	}
}

func TestCompressionAdvantage(t *testing.T) {
	// The point of atom mode: fewer trace bytes per branch than
	// branch-broadcast for the same information (given the program image).
	// The gain depends on the indirect-branch fraction — indirect targets
	// still need full address packets — so the loop-heavy hmmer (few
	// indirects) compresses much harder than the dispatch-heavy sjeng.
	for _, tc := range []struct {
		bench  string
		factor float64 // minimum broadcast/atom ratio
	}{
		{"456.hmmer", 2.5},
		{"458.sjeng", 1.4},
	} {
		_, truth, broadcast := collectTrace(t, tc.bench, true, 60_000)
		_, _, atoms := collectTrace(t, tc.bench, false, 60_000)
		ratio := float64(len(broadcast)) / float64(len(atoms))
		if ratio < tc.factor {
			t.Errorf("%s: atom-mode compression %.2fx below expected %.1fx (%d -> %d bytes, %d events)",
				tc.bench, ratio, tc.factor, len(broadcast), len(atoms), len(truth))
		}
	}
}

func TestMidStreamJoinWaitsForISync(t *testing.T) {
	prog, _, stream := collectTrace(t, "401.bzip2", false, 40_000)
	// Chop the stream start: the decoder must not emit garbage, and must
	// recover at the next periodic sync.
	cut := len(stream) / 3
	pkts, _ := ptm.DecodeAll(stream) // full decode for reference only
	_ = pkts
	r := New(prog)
	dec := ptm.NewStreamDecoder()
	var recovered []Branch
	sawSync := false
	for _, b := range stream[cut:] {
		for _, pkt := range dec.Feed(b) {
			if pkt.Type == ptm.PktISync {
				sawSync = true
			}
			bs, err := r.Feed(pkt)
			if err != nil {
				t.Fatalf("after join: %v", err)
			}
			if !sawSync && len(bs) > 0 {
				t.Fatal("emitted transfers before any i-sync")
			}
			recovered = append(recovered, bs...)
		}
	}
	if !sawSync {
		t.Skip("no periodic sync in the tail; enlarge the run")
	}
	if len(recovered) == 0 {
		t.Fatal("no transfers recovered after resync")
	}
	if r.Stats().LostRegion == 0 {
		t.Error("pre-sync packets not accounted as lost")
	}
	// Recovered stream must be self-consistent: every recovered target of
	// a taken direct transfer lies inside the program or kernel space.
	for _, b := range recovered {
		if b.Kind == cpu.KindSyscall {
			continue
		}
		if b.Taken && !prog.Contains(b.Target) {
			t.Fatalf("recovered target %#x outside program", b.Target)
		}
	}
}

func TestOverflowDesynchronises(t *testing.T) {
	prog, _, _ := collectTrace(t, "403.gcc", false, 10_000)
	r := New(prog)
	// Sync in, then overflow: the decoder must stop walking.
	if _, err := r.Feed(ptm.Packet{Type: ptm.PktISync, Addr: prog.Base}); err != nil {
		t.Fatal(err)
	}
	if !r.Synced() {
		t.Fatal("not synced after i-sync")
	}
	if _, err := r.Feed(ptm.Packet{Type: ptm.PktOverflow}); err != nil {
		t.Fatal(err)
	}
	if r.Synced() {
		t.Fatal("still synced after overflow")
	}
	bs, err := r.Feed(ptm.Packet{Type: ptm.PktAtoms, Atoms: []bool{true}})
	if err != nil || len(bs) != 0 {
		t.Fatalf("desynced decoder emitted transfers: %v %v", bs, err)
	}
	if r.Stats().LostRegion == 0 {
		t.Error("lost packets not counted")
	}
}

func TestWalkDetectsInconsistentTrace(t *testing.T) {
	// A trace whose address packet contradicts the code (a syscall whose
	// kernel target does not match the SVC number) must be rejected, not
	// silently accepted — this is the defence against trace spoofing.
	src := `
		svc #3
		halt
	`
	prog, err := isa.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	r := New(prog)
	if _, err := r.Feed(ptm.Packet{Type: ptm.PktISync, Addr: 0x8000}); err != nil {
		t.Fatal(err)
	}
	_, err = r.Feed(ptm.Packet{
		Type: ptm.PktBranch, Addr: cpu.SyscallTarget(9), Exc: true, Kind: cpu.KindSyscall,
	})
	if err == nil {
		t.Fatal("inconsistent syscall target accepted")
	}
}
