// Package reconstruct recovers the full branch stream from a *compressed*
// PTM trace. The RTAD prototype runs the PTM in branch-broadcast mode so
// the IGM sees every target address directly — simple hardware, but each
// taken branch costs one-to-five trace bytes. CoreSight's native economy
// mode instead emits one *atom bit* per direct branch (taken/not-taken)
// and full addresses only where the target cannot be known statically
// (indirect jumps, returns, exceptions); a decoder with access to the
// program image walks the static code between waypoints to recover every
// transfer. This package implements that walk against the host ISA — the
// natural bandwidth extension for IGM that §III-A's related work (Intel PT
// decoders like [7]) performs in software — and the benchmark suite
// quantifies the compression it buys.
package reconstruct

import (
	"fmt"

	"rtad/internal/cpu"
	"rtad/internal/isa"
	"rtad/internal/ptm"
)

// Branch is one recovered control transfer, equivalent to what the CPU's
// retirement hook reports (so recovery can be checked against ground truth).
type Branch struct {
	PC     uint32
	Target uint32
	Kind   cpu.Kind
	Taken  bool
}

// Stats counts reconstruction activity.
type Stats struct {
	Branches   int64 // recovered transfers (incl. not-taken conditionals)
	Atoms      int64 // atom bits consumed
	Addresses  int64 // address packets consumed
	Resyncs    int64 // i-sync realignments
	LostRegion int64 // packets skipped while desynchronised (after overflow)
}

// Reconstructor is the stateful decoder. Feed it decoded PTM packets in
// stream order; it walks the program image between waypoints and emits the
// recovered transfers.
type Reconstructor struct {
	prog *isa.Program

	pc     uint32
	synced bool

	atoms []bool
	addrs []addrPkt

	out   []Branch
	stats Stats
}

type addrPkt struct {
	addr uint32
	exc  bool
	kind cpu.Kind
}

// New returns a reconstructor for the given program image.
func New(prog *isa.Program) *Reconstructor {
	return &Reconstructor{prog: prog}
}

// Stats returns the activity counters.
func (r *Reconstructor) Stats() Stats { return r.stats }

// Synced reports whether the decoder currently has a valid program counter.
func (r *Reconstructor) Synced() bool { return r.synced }

// Feed consumes one packet and returns any transfers recovered by walking
// the program as far as the available waypoint information allows.
func (r *Reconstructor) Feed(pkt ptm.Packet) ([]Branch, error) {
	switch pkt.Type {
	case ptm.PktISync:
		r.pc = pkt.Addr
		r.synced = true
		r.atoms = r.atoms[:0]
		r.addrs = r.addrs[:0]
		r.stats.Resyncs++
	case ptm.PktOverflow:
		// Trace bytes were lost: the walk is no longer trustworthy until
		// the next i-sync re-anchors it.
		r.synced = false
	case ptm.PktAtoms:
		if !r.synced {
			r.stats.LostRegion++
			break
		}
		r.atoms = append(r.atoms, pkt.Atoms...)
	case ptm.PktBranch:
		if !r.synced {
			r.stats.LostRegion++
			break
		}
		kind := cpu.KindIndirect
		if pkt.Exc {
			kind = pkt.Kind
		}
		r.addrs = append(r.addrs, addrPkt{addr: pkt.Addr, exc: pkt.Exc, kind: kind})
	case ptm.PktASync, ptm.PktTimestamp:
		// alignment/timing only
	}
	if err := r.walk(); err != nil {
		return nil, err
	}
	out := r.out
	r.out = nil
	return out, nil
}

// walk advances through the static code, consuming waypoint info until a
// needed atom or address is not yet available.
func (r *Reconstructor) walk() error {
	for r.synced {
		if !r.prog.Contains(r.pc) {
			return fmt.Errorf("reconstruct: walked outside the program image at %#x", r.pc)
		}
		w, err := r.prog.WordAt(r.pc)
		if err != nil {
			return err
		}
		ins, err := isa.Decode(w)
		if err != nil {
			return fmt.Errorf("reconstruct: at %#x: %w", r.pc, err)
		}
		next := r.pc + isa.WordBytes

		switch {
		case ins.Op == isa.HALT:
			// End of program: nothing further to recover.
			r.synced = false
			return nil

		case !ins.Op.IsBranch():
			r.pc = next
			continue

		case ins.Op == isa.SVC:
			// Exception waypoint: the PTM emits a branch-address packet
			// with an exception byte for the kernel entry.
			pktAddr, ok := r.popAddr()
			if !ok {
				return nil
			}
			want := cpu.SyscallTarget(ins.Imm)
			if pktAddr.addr != want {
				return fmt.Errorf("reconstruct: syscall at %#x: trace says %#x, code says %#x",
					r.pc, pktAddr.addr, want)
			}
			r.emit(Branch{PC: r.pc, Target: pktAddr.addr, Kind: cpu.KindSyscall, Taken: true})
			r.pc = next // SVC returns to the following instruction

		case ins.Op.IsIndirect():
			pktAddr, ok := r.popAddr()
			if !ok {
				return nil
			}
			kind := cpu.KindIndirect
			switch ins.Op {
			case isa.RET:
				kind = cpu.KindReturn
			case isa.BLR:
				kind = cpu.KindIndCall
			}
			r.emit(Branch{PC: r.pc, Target: pktAddr.addr, Kind: kind, Taken: true})
			r.pc = pktAddr.addr

		default:
			// Direct branch: one atom decides taken/not-taken.
			taken, ok := r.popAtom()
			if !ok {
				return nil
			}
			target := next + uint32(ins.Imm)*isa.WordBytes
			kind := cpu.KindDirect
			if ins.Op == isa.BL {
				kind = cpu.KindCall
			}
			if taken {
				r.emit(Branch{PC: r.pc, Target: target, Kind: kind, Taken: true})
				r.pc = target
			} else {
				r.emit(Branch{PC: r.pc, Target: next, Kind: kind, Taken: false})
				r.pc = next
			}
		}
	}
	return nil
}

func (r *Reconstructor) popAtom() (bool, bool) {
	if len(r.atoms) == 0 {
		return false, false
	}
	a := r.atoms[0]
	r.atoms = r.atoms[:copy(r.atoms, r.atoms[1:])]
	r.stats.Atoms++
	return a, true
}

func (r *Reconstructor) popAddr() (addrPkt, bool) {
	if len(r.addrs) == 0 {
		return addrPkt{}, false
	}
	a := r.addrs[0]
	r.addrs = r.addrs[:copy(r.addrs, r.addrs[1:])]
	r.stats.Addresses++
	return a, true
}

func (r *Reconstructor) emit(b Branch) {
	r.out = append(r.out, b)
	r.stats.Branches++
}

// DecodeTrace is a convenience: decode a whole raw PTM byte stream against
// a program image and return every recovered transfer.
func DecodeTrace(prog *isa.Program, stream []byte) ([]Branch, Stats, error) {
	pkts, errs := ptm.DecodeAll(stream)
	if errs != 0 {
		return nil, Stats{}, fmt.Errorf("reconstruct: %d packet-level errors", errs)
	}
	r := New(prog)
	var out []Branch
	for _, pkt := range pkts {
		bs, err := r.Feed(pkt)
		if err != nil {
			return nil, r.Stats(), err
		}
		out = append(out, bs...)
	}
	return out, r.Stats(), nil
}
