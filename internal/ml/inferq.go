package ml

import "rtad/internal/gpu"

// Shared fixed-point inference. These helpers are the single source of
// truth for the deployed models' Q16.16 forward passes: the kernels
// package's bit-exact Go references (trimming-flow step 4) and the native
// inference backend both run through them, so every path that claims
// bit-identity with the GPU kernels shares one implementation.
//
// The parameter structs hold slice views over a quantised model image —
// typically device memory — and never copy or own the weights. Their
// methods reuse internal scratch buffers, so a params value serves one
// inference at a time (one pipeline, one goroutine), matching how engines
// are used everywhere in this repo.

// ELMParamsQ views a quantised ELM image: Window-1 input positions over a
// Vocab-class alphabet into Hidden units and a Vocab-class readout.
type ELMParamsQ struct {
	Window int
	Vocab  int
	Hidden int
	SigLUT []uint32 // [LUTSize] sigmoid table
	B1     []uint32 // [Hidden] hidden biases
	W1     []uint32 // [(Window-1)*Vocab][Hidden] input weights, row-major by column
	Beta   []uint32 // [Hidden][Vocab] readout weights

	logits []int32

	// Batched-pass scratch (MarginBatchQ): hidden accumulators [Hidden]
	// and a logits vector [Vocab].
	bsig []int32
	bvec []int32
}

// MarginQ runs one forward pass over the quantised input words (Window
// class IDs, the last being the branch actually observed) and returns the
// margin score: max logit minus the observed class's logit. The
// accumulation order matches the kernels exactly — integer adds are
// associative, so the per-wave partial sums on the GPU equal this
// sequential walk bit-for-bit.
func (p *ELMParamsQ) MarginQ(in []uint32) int32 {
	if len(p.logits) != p.Vocab {
		p.logits = make([]int32, p.Vocab)
	}
	logits := p.logits
	for v := range logits {
		logits[v] = 0
	}
	for row := 0; row < p.Hidden; row++ {
		acc := int32(p.B1[row])
		for j := 0; j < p.Window-1; j++ {
			col := j*p.Vocab + int(in[j])
			acc += int32(p.W1[col*p.Hidden+row])
		}
		sig := SigmoidQ(p.SigLUT, acc)
		beta := p.Beta[row*p.Vocab : (row+1)*p.Vocab]
		for v, b := range beta {
			logits[v] += gpu.MulQ(sig, int32(b))
		}
	}
	return MarginOfQ(logits, int(in[p.Window-1]))
}

// LSTMParamsQ views a quantised LSTM image: recency-weighted window
// embedding, NumGates gate banks over the Embed+Hidden concatenated input,
// and a Vocab-class readout.
type LSTMParamsQ struct {
	Window  int
	Vocab   int
	Embed   int
	Hidden  int
	SigLUT  []uint32 // [LUTSize]
	TanhLUT []uint32 // [LUTSize]
	PosW    []uint32 // [Window-1] recency weights
	Emb     []uint32 // [Vocab][Embed]
	Wg      []uint32 // [NumGates][Hidden][Embed+Hidden]
	Bg      []uint32 // [NumGates][Hidden]
	OutW    []uint32 // [Hidden][Vocab]
	OutB    []uint32 // [Vocab]

	xh     []int32
	gates  []int32
	logits []int32

	// Batched-pass scratch (StepBatchQ), row-major with the batch outer:
	// xh [n][Embed+Hidden], gates [n][NumGates*Hidden], logits [n][Vocab].
	bxh     []int32
	bgates  []int32
	blogits []int32
}

// StepQ advances the recurrent state by one timestep: h and c (Hidden
// values each, Q16.16) are read and updated in place, and the returned
// value is the margin score for the window's final class.
func (p *LSTMParamsQ) StepQ(h, c []int32, in []uint32) int32 {
	xw := p.Embed + p.Hidden
	if len(p.xh) != xw {
		p.xh = make([]int32, xw)
		p.gates = make([]int32, NumGates*p.Hidden)
		p.logits = make([]int32, p.Vocab)
	}
	// Window embedding.
	xh := p.xh
	for i := range xh {
		xh[i] = 0
	}
	for j := 0; j < p.Window-1; j++ {
		cls := int(in[j])
		pw := int32(p.PosW[j])
		emb := p.Emb[cls*p.Embed : (cls+1)*p.Embed]
		for e, w := range emb {
			xh[e] += gpu.MulQ(int32(w), pw)
		}
	}
	copy(xh[p.Embed:], h)
	// Gates.
	gates := p.gates
	for g := 0; g < NumGates; g++ {
		for r := 0; r < p.Hidden; r++ {
			acc := int32(p.Bg[g*p.Hidden+r])
			w := p.Wg[(g*p.Hidden+r)*xw : (g*p.Hidden+r+1)*xw]
			for k, wk := range w {
				acc += gpu.MulQ(int32(wk), xh[k])
			}
			if g == GateG {
				gates[g*p.Hidden+r] = TanhQ(p.TanhLUT, acc)
			} else {
				gates[g*p.Hidden+r] = SigmoidQ(p.SigLUT, acc)
			}
		}
	}
	// State update.
	for r := 0; r < p.Hidden; r++ {
		cv := gpu.MulQ(gates[GateF*p.Hidden+r], c[r]) + gpu.MulQ(gates[GateI*p.Hidden+r], gates[GateG*p.Hidden+r])
		c[r] = cv
		h[r] = gpu.MulQ(gates[GateO*p.Hidden+r], TanhQ(p.TanhLUT, cv))
	}
	// Readout.
	logits := p.logits
	for v := 0; v < p.Vocab; v++ {
		logits[v] = int32(p.OutB[v])
	}
	for k := 0; k < p.Hidden; k++ {
		w := h[k]
		row := p.OutW[k*p.Vocab : (k+1)*p.Vocab]
		for v, o := range row {
			logits[v] += gpu.MulQ(int32(o), w)
		}
	}
	return MarginOfQ(logits, int(in[p.Window-1]))
}

// MarginOfQ reduces logits to the margin score: max logit minus the target
// class's logit, the kernels' max-tree followed by a subtract.
func MarginOfQ(logits []int32, target int) int32 {
	best := logits[0]
	for _, v := range logits[1:] {
		if v > best {
			best = v
		}
	}
	return best - logits[target]
}

// EwmaStepQ folds a margin into the engine's persistent smoothed score:
// ewma' = ewma + alpha*(margin - ewma), all Q16.16.
func EwmaStepQ(ewma, margin, alpha int32) int32 {
	return ewma + gpu.MulQ(margin-ewma, alpha)
}
