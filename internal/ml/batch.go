package ml

import "rtad/internal/gpu"

// Batched fixed-point inference: the matrix-matrix companions to MarginQ
// and StepQ. A batch is n independent input rows — in serving terms, one
// pending vector from each of n sessions deployed from the same trained
// model. The hot loops run register-blocked over the natural row-major
// activation layout: four rows advance together with their accumulators
// held in registers, so each weight word loaded feeds four multiply-adds
// and the accumulators never touch memory — where the single-vector
// kernels pay a full weight walk per row for their one register
// accumulator. That per-block amortisation of the weight stream, plus the
// per-call bookkeeping paid once per batch, is what the serving scheduler
// banks on.
//
// Bit-identity contract: for every row b, the arithmetic performed on that
// row — operation order, operand order, Q16.16 rounding — is exactly the
// sequence MarginQ/StepQ would perform on the same inputs. Integer adds
// commute across rows but never within one, and the loops only reorder
// work across rows. A batched pass over n rows therefore equals n
// independent single-row passes bit-for-bit, which is what lets the
// serving layer batch across sessions without perturbing any session's
// judgment stream.

// growQ returns scratch with at least need elements, reusing the backing
// array when it is already big enough.
func growQ(s []int32, need int) []int32 {
	if cap(s) < need {
		return make([]int32, need)
	}
	return s[:need]
}

// MarginBatchQ runs the ELM forward pass over n windows packed row-major
// in `in` (n*Window words) and writes the n margin scores to margins.
// Row b reproduces MarginQ(in[b*Window:(b+1)*Window]) bit-for-bit.
func (p *ELMParamsQ) MarginBatchQ(in []uint32, n int, margins []int32) {
	if n == 0 {
		return
	}
	w := p.Window
	// The ELM weight blocks are small enough that the whole batch runs out
	// of L1 once the first row has streamed them, so unlike the LSTM the
	// win here is access order, not weight residency. The hidden pass walks
	// W1 column-major — each selected input column is Hidden contiguous
	// words, where MarginQ's row-major walk gathers with stride Hidden —
	// and the readout streams Beta row-major exactly as MarginQ does.
	// Per-row accumulation order (j ascending, then row ascending) is
	// unchanged, so the margins stay bit-identical.
	p.bsig = growQ(p.bsig, p.Hidden)
	p.bvec = growQ(p.bvec, p.Vocab)
	accs, logits := p.bsig[:p.Hidden], p.bvec[:p.Vocab]
	for b := 0; b < n; b++ {
		win := in[b*w : (b+1)*w]
		for row, bb := range p.B1[:p.Hidden] {
			accs[row] = int32(bb)
		}
		for j := 0; j < w-1; j++ {
			col := j*p.Vocab + int(win[j])
			wcol := p.W1[col*p.Hidden : (col+1)*p.Hidden]
			for row, wv := range wcol {
				accs[row] += int32(wv)
			}
		}
		for v := range logits {
			logits[v] = 0
		}
		for row, a := range accs {
			sig := SigmoidQ(p.SigLUT, a)
			beta := p.Beta[row*p.Vocab : (row+1)*p.Vocab]
			for v, bb := range beta {
				logits[v] += gpu.MulQ(sig, int32(bb))
			}
		}
		margins[b] = MarginOfQ(logits, int(win[w-1]))
	}
}

// stepBatchTile bounds the rows one blocked pass works on. The tile's
// scratch (gates dominate: NumGates*Hidden*tile words) has to stay
// cache-resident together with the weight row being streamed — at 32 rows
// the deployed LSTM's scratch is ~34KB, and growing the tile further makes
// the batched pass slower per row than the single-vector kernel it
// replaces.
const stepBatchTile = 32

// StepBatchQ advances n independent recurrent streams by one timestep. h
// and c carry each row's persistent state packed row-major (n*Hidden
// values each), updated in place; `in` packs the n windows (n*Window
// words); margins receives the n margin scores. Row b reproduces
// StepQ(h[b], c[b], in[b]) bit-for-bit. Rows must belong to distinct
// streams — consecutive timesteps of one stream are sequentially dependent
// through h/c and cannot share a batch.
//
// Batches wider than stepBatchTile run as consecutive tiles; rows never
// interact, so tiling changes nothing but scratch residency.
func (p *LSTMParamsQ) StepBatchQ(h, c []int32, in []uint32, n int, margins []int32) {
	for base := 0; base < n; base += stepBatchTile {
		t := n - base
		if t > stepBatchTile {
			t = stepBatchTile
		}
		p.stepBatchTile(h[base*p.Hidden:], c[base*p.Hidden:], in[base*p.Window:], t, margins[base:])
	}
}

func (p *LSTMParamsQ) stepBatchTile(h, c []int32, in []uint32, n int, margins []int32) {
	if n == 0 {
		return
	}
	xw := p.Embed + p.Hidden
	H := p.Hidden
	GH := NumGates * H
	// All batch scratch stays row-major (batch-outer): the kernel is
	// ALU-bound at deployed dims, so the win comes from sharing each
	// streamed weight word across four register accumulators — a
	// transposed activation layout would add scatter/gather traffic
	// without feeding the multipliers any faster.
	p.bxh = growQ(p.bxh, n*xw)
	p.bgates = growQ(p.bgates, n*GH)
	p.blogits = growQ(p.blogits, n*p.Vocab)
	bxh, bgates, blogits := p.bxh, p.bgates, p.blogits

	// Window embedding per row (an Emb gather, inherently row-local),
	// concatenated with the row's previous hidden state — exactly StepQ's
	// xh vector, one per row.
	for b := 0; b < n; b++ {
		xh := bxh[b*xw : (b+1)*xw]
		for i := range xh {
			xh[i] = 0
		}
		win := in[b*p.Window : (b+1)*p.Window]
		for j := 0; j < p.Window-1; j++ {
			cls := int(win[j])
			pw := int32(p.PosW[j])
			emb := p.Emb[cls*p.Embed : (cls+1)*p.Embed]
			for e, w := range emb {
				xh[e] += gpu.MulQ(int32(w), pw)
			}
		}
		copy(xh[p.Embed:], h[b*H:(b+1)*H])
	}

	// Gates: register-blocked accumulation. Four rows advance together with
	// their accumulators held in registers, so each weight word costs one
	// load feeding four multiply-adds; the activations stream as four
	// stride-1 rows. Per-row accumulation order stays k-ascending,
	// preserving bit-identity with StepQ.
	for g := 0; g < NumGates; g++ {
		for r := 0; r < H; r++ {
			gi := g*H + r
			bg := int32(p.Bg[gi])
			wrow := p.Wg[gi*xw : (gi+1)*xw]
			lut := p.SigLUT
			if g == GateG {
				lut = p.TanhLUT
			}
			b0 := 0
			for ; b0+4 <= n; b0 += 4 {
				a0, a1, a2, a3 := bg, bg, bg, bg
				x0 := bxh[b0*xw : (b0+1)*xw]
				x1 := bxh[(b0+1)*xw : (b0+2)*xw]
				x2 := bxh[(b0+2)*xw : (b0+3)*xw]
				x3 := bxh[(b0+3)*xw : (b0+4)*xw]
				for k, wk := range wrow {
					wv := int32(wk)
					a0 += gpu.MulQ(wv, x0[k])
					a1 += gpu.MulQ(wv, x1[k])
					a2 += gpu.MulQ(wv, x2[k])
					a3 += gpu.MulQ(wv, x3[k])
				}
				if g == GateG {
					bgates[b0*GH+gi] = TanhQ(lut, a0)
					bgates[(b0+1)*GH+gi] = TanhQ(lut, a1)
					bgates[(b0+2)*GH+gi] = TanhQ(lut, a2)
					bgates[(b0+3)*GH+gi] = TanhQ(lut, a3)
				} else {
					bgates[b0*GH+gi] = SigmoidQ(lut, a0)
					bgates[(b0+1)*GH+gi] = SigmoidQ(lut, a1)
					bgates[(b0+2)*GH+gi] = SigmoidQ(lut, a2)
					bgates[(b0+3)*GH+gi] = SigmoidQ(lut, a3)
				}
			}
			for ; b0 < n; b0++ {
				a := bg
				xr := bxh[b0*xw : (b0+1)*xw]
				for k, wk := range wrow {
					a += gpu.MulQ(int32(wk), xr[k])
				}
				if g == GateG {
					bgates[b0*GH+gi] = TanhQ(lut, a)
				} else {
					bgates[b0*GH+gi] = SigmoidQ(lut, a)
				}
			}
		}
	}

	// State update per row, mirroring StepQ's order; each row's gate bank
	// is contiguous, and h updates in place for the readout to stream.
	for b := 0; b < n; b++ {
		gates := bgates[b*GH : (b+1)*GH]
		hb := h[b*H : (b+1)*H]
		cb := c[b*H : (b+1)*H]
		for r := 0; r < H; r++ {
			cv := gpu.MulQ(gates[GateF*H+r], cb[r]) +
				gpu.MulQ(gates[GateI*H+r], gates[GateG*H+r])
			cb[r] = cv
			hb[r] = gpu.MulQ(gates[GateO*H+r], TanhQ(p.TanhLUT, cv))
		}
	}

	// Readout: the same four-row register blocking, walking an OutW column
	// per logit. The whole OutW block is L1-resident at deployed dims, so
	// the strided column walk costs cache loads only while the four logit
	// accumulators stay in registers; each row's logits land contiguous,
	// ready for the margin reduction with no gather.
	vocab := p.Vocab
	b0 := 0
	for ; b0+4 <= n; b0 += 4 {
		h0 := h[b0*H : (b0+1)*H]
		h1 := h[(b0+1)*H : (b0+2)*H]
		h2 := h[(b0+2)*H : (b0+3)*H]
		h3 := h[(b0+3)*H : (b0+4)*H]
		for v := 0; v < vocab; v++ {
			ob := int32(p.OutB[v])
			a0, a1, a2, a3 := ob, ob, ob, ob
			w := v
			for k := 0; k < H; k++ {
				ov := int32(p.OutW[w])
				a0 += gpu.MulQ(ov, h0[k])
				a1 += gpu.MulQ(ov, h1[k])
				a2 += gpu.MulQ(ov, h2[k])
				a3 += gpu.MulQ(ov, h3[k])
				w += vocab
			}
			blogits[b0*vocab+v] = a0
			blogits[(b0+1)*vocab+v] = a1
			blogits[(b0+2)*vocab+v] = a2
			blogits[(b0+3)*vocab+v] = a3
		}
	}
	for ; b0 < n; b0++ {
		hr := h[b0*H : (b0+1)*H]
		for v := 0; v < vocab; v++ {
			a := int32(p.OutB[v])
			w := v
			for k := 0; k < H; k++ {
				a += gpu.MulQ(int32(p.OutW[w]), hr[k])
				w += vocab
			}
			blogits[b0*vocab+v] = a
		}
	}
	for b := 0; b < n; b++ {
		margins[b] = MarginOfQ(blogits[b*vocab:(b+1)*vocab], int(in[(b+1)*p.Window-1]))
	}
}
