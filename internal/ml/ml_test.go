package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtad/internal/gpu"
)

func TestCholeskySolveIdentity(t *testing.T) {
	a := NewMat(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := NewMat(3, 2)
	for i := 0; i < 3; i++ {
		b.Set(i, 0, float64(i+1))
		b.Set(i, 1, float64(-i))
	}
	x, err := CholeskySolve(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(x.At(i, j)-b.At(i, j)) > 1e-12 {
				t.Errorf("x[%d,%d] = %g", i, j, x.At(i, j))
			}
		}
	}
}

// Property: for random SPD systems, the Cholesky solution has a tiny
// residual.
func TestCholeskySolveResidualProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		// Build SPD A = MᵀM + I.
		mrand := NewMat(n, n)
		mrand.Randomize(rng, 1)
		a := TransposeMul(mrand, mrand)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		b := NewMat(n, 1)
		b.Randomize(rng, 2)
		x, err := CholeskySolve(a, b, 0)
		if err != nil {
			return false
		}
		// residual = A·x - b
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * x.At(k, 0)
			}
			if math.Abs(s-b.At(i, 0)) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMat(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, -1)
	b := NewMat(2, 1)
	if _, err := CholeskySolve(a, b, 0); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestQConversionRoundTrip(t *testing.T) {
	prop := func(raw int32) bool {
		// Limit to the representable range with slack.
		x := float64(raw%(1<<20)) / 256.0
		return math.Abs(FromQ(ToQ(x))-x) <= 1.0/float64(gpu.QOne)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if ToQ(1e9) != math.MaxInt32 || ToQ(-1e9) != math.MinInt32 {
		t.Error("saturation broken")
	}
}

func TestLUTMatchesFloatActivations(t *testing.T) {
	sig := SigmoidLUT()
	tanh := TanhLUT()
	for _, x := range []float64{-7.9, -2, -0.5, 0, 0.3, 1, 3, 7.9} {
		q := ToQ(x)
		gotS := FromQ(SigmoidQ(sig, q))
		if math.Abs(gotS-Sigmoid(x)) > 0.04 {
			t.Errorf("sigmoid LUT at %g: %g vs %g", x, gotS, Sigmoid(x))
		}
		gotT := FromQ(TanhQ(tanh, q))
		if math.Abs(gotT-math.Tanh(x)) > 0.04 {
			t.Errorf("tanh LUT at %g: %g vs %g", x, gotT, math.Tanh(x))
		}
	}
	// Saturation beyond the table range.
	if FromQ(SigmoidQ(sig, ToQ(100))) < 0.99 {
		t.Error("sigmoid LUT does not saturate high")
	}
	if FromQ(SigmoidQ(sig, ToQ(-100))) > 0.01 {
		t.Error("sigmoid LUT does not saturate low")
	}
}

func TestLUTIndexClamping(t *testing.T) {
	if LUTIndex(math.MinInt32) != 0 {
		t.Error("negative overflow not clamped")
	}
	if LUTIndex(math.MaxInt32) != LUTSize-1 {
		t.Error("positive overflow not clamped")
	}
	if LUTIndex(0) != LUTSize/2 {
		t.Error("zero not centred")
	}
}

// markovWindows generates a learnable synthetic class stream: a first-order
// Markov chain with strongly preferred successors, cut into windows.
func markovWindows(vocab, window, n int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	succ := make([][]int32, vocab)
	for c := range succ {
		succ[c] = []int32{int32((c + 1) % vocab), int32((c + 1) % vocab), int32((c + 3) % vocab), int32(rng.Intn(vocab))}
	}
	cur := int32(0)
	stream := make([]int32, n+window)
	for i := range stream {
		stream[i] = cur
		cur = succ[cur][rng.Intn(4)]
	}
	out := make([][]int32, n)
	for i := range out {
		out[i] = stream[i : i+window]
	}
	return out
}

func TestELMLearnsMarkovStructure(t *testing.T) {
	cfg := DefaultELMConfig()
	train := markovWindows(cfg.Vocab, cfg.Window, 3000, 11)
	m, err := TrainELM(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	// Normal continuation scores must sit well below shuffled-window scores.
	test := markovWindows(cfg.Vocab, cfg.Window, 400, 99)
	var normal []float64
	for _, w := range test {
		normal = append(normal, m.Score(w))
	}
	// Anomalous stream: legitimate classes in random order — the paper's
	// attack emulation (inserted legitimate branch data breaks sequencing).
	rng := rand.New(rand.NewSource(3))
	var anom []float64
	for range test {
		w := make([]int32, cfg.Window)
		for j := range w {
			w[j] = int32(rng.Intn(cfg.Vocab))
		}
		anom = append(anom, m.Score(w))
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(anom) <= mean(normal)*1.2 {
		t.Errorf("ELM not discriminative: normal mean %.3f, anomalous mean %.3f", mean(normal), mean(anom))
	}
	// Detection operates on a smoothed score (the engine keeps an EWMA):
	// calibrate the alarm level on smoothed normal scores, then require a
	// sustained anomalous stream to cross it within a bounded number of
	// windows and with no false alarm on a fresh normal stream.
	const alpha = 0.25
	smooth := func(scores []float64) []float64 {
		out := make([]float64, len(scores))
		ew := 0.0
		for i, s := range scores {
			ew = (1-alpha)*ew + alpha*s
			out[i] = ew
		}
		return out
	}
	thr := CalibrateThreshold(smooth(normal), 1.0, 0.02)
	fresh := markovWindows(cfg.Vocab, cfg.Window, 400, 123)
	var freshScores []float64
	for _, w := range fresh {
		freshScores = append(freshScores, m.Score(w))
	}
	for i, s := range smooth(freshScores) {
		if s > thr {
			t.Fatalf("false alarm on normal stream at window %d", i)
		}
	}
	detectAt := -1
	for i, s := range smooth(anom) {
		if s > thr {
			detectAt = i
			break
		}
	}
	if detectAt < 0 || detectAt > 300 {
		t.Errorf("ELM did not detect sustained anomaly promptly (detectAt=%d)", detectAt)
	}
}

func TestELMTrainValidation(t *testing.T) {
	cfg := DefaultELMConfig()
	if _, err := TrainELM(cfg, nil); err == nil {
		t.Error("no data accepted")
	}
	bad := markovWindows(cfg.Vocab, cfg.Window, 200, 1)
	bad[10][0] = int32(cfg.Vocab) // out of vocab
	if _, err := TrainELM(cfg, bad); err == nil {
		t.Error("out-of-vocab class accepted")
	}
}

func TestLSTMLearnsSequenceStructure(t *testing.T) {
	cfg := DefaultLSTMConfig()
	cfg.Epochs = 3
	train := markovWindows(cfg.Vocab, cfg.Window, 1500, 21)
	m, err := TrainLSTM(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	test := markovWindows(cfg.Vocab, cfg.Window, 300, 77)
	st := m.NewState()
	var normal []float64
	for _, w := range test {
		s, err := m.Score(st, w)
		if err != nil {
			t.Fatal(err)
		}
		normal = append(normal, s)
	}
	// Anomalous stream: same alphabet, randomly drawn (inserted legitimate
	// classes with no sequential structure — the paper's attack model).
	rng := rand.New(rand.NewSource(5))
	st2 := m.NewState()
	var anom []float64
	for i := 0; i < 300; i++ {
		w := make([]int32, cfg.Window)
		for j := range w {
			w[j] = int32(rng.Intn(cfg.Vocab))
		}
		s, err := m.Score(st2, w)
		if err != nil {
			t.Fatal(err)
		}
		anom = append(anom, s)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(anom) <= mean(normal)*1.1 {
		t.Errorf("LSTM not discriminative: normal %.3f vs anomalous %.3f", mean(normal), mean(anom))
	}
}

func TestLSTMStepShapes(t *testing.T) {
	cfg := DefaultLSTMConfig()
	cfg.Epochs = 1
	train := markovWindows(cfg.Vocab, cfg.Window, 200, 31)
	m, err := TrainLSTM(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	st := m.NewState()
	logits, err := m.Step(st, train[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != cfg.Vocab {
		t.Errorf("logits length %d", len(logits))
	}
	if _, err := m.Step(st, train[0][:3]); err == nil {
		t.Error("short window accepted")
	}
	// State must evolve.
	h0 := append([]float64(nil), st.H...)
	m.Step(st, train[1])
	same := true
	for i := range h0 {
		if h0[i] != st.H[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("recurrent state did not change")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := CalibrateThreshold(scores, 1.0, 0); got != 10 {
		t.Errorf("max quantile = %g", got)
	}
	if got := CalibrateThreshold(scores, 0.5, 0); got != 5 {
		t.Errorf("median = %g", got)
	}
	if got := CalibrateThreshold(nil, 1, 2.5); got != 2.5 {
		t.Errorf("empty scores = %g", got)
	}
	if got := CalibrateThreshold(scores, 1.0, 1); got != 11 {
		t.Errorf("margin not applied: %g", got)
	}
}
