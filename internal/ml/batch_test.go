package ml

import (
	"math/rand"
	"testing"
)

// randQ returns a Q16.16 value in roughly [-4, 4) — the magnitude range
// trained weights land in after quantisation.
func randQ(rng *rand.Rand) uint32 {
	return uint32(int32(rng.Intn(1<<19) - 1<<18))
}

func randQVec(rng *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = randQ(rng)
	}
	return out
}

// The params structs are shape-generic, so the batch equivalence is pinned
// on shapes deliberately different from the deployed kernels'.

func randELMParams(rng *rand.Rand) *ELMParamsQ {
	p := &ELMParamsQ{Window: 5, Vocab: 7, Hidden: 6, SigLUT: SigmoidLUT()}
	p.B1 = randQVec(rng, p.Hidden)
	p.W1 = randQVec(rng, (p.Window-1)*p.Vocab*p.Hidden)
	p.Beta = randQVec(rng, p.Hidden*p.Vocab)
	return p
}

func randLSTMParams(rng *rand.Rand) *LSTMParamsQ {
	p := &LSTMParamsQ{Window: 6, Vocab: 9, Embed: 4, Hidden: 5,
		SigLUT: SigmoidLUT(), TanhLUT: TanhLUT()}
	p.PosW = randQVec(rng, p.Window-1)
	p.Emb = randQVec(rng, p.Vocab*p.Embed)
	p.Wg = randQVec(rng, NumGates*p.Hidden*(p.Embed+p.Hidden))
	p.Bg = randQVec(rng, NumGates*p.Hidden)
	p.OutW = randQVec(rng, p.Hidden*p.Vocab)
	p.OutB = randQVec(rng, p.Vocab)
	return p
}

func randWindows(rng *rand.Rand, window, vocab, n int) []uint32 {
	out := make([]uint32, n*window)
	for i := range out {
		out[i] = uint32(rng.Intn(vocab))
	}
	return out
}

func TestMarginBatchQMatchesMarginQ(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randELMParams(rng)
	for _, n := range []int{1, 2, 3, 17, 64} {
		in := randWindows(rng, p.Window, p.Vocab, n)
		got := make([]int32, n)
		p.MarginBatchQ(in, n, got)
		for b := 0; b < n; b++ {
			want := p.MarginQ(in[b*p.Window : (b+1)*p.Window])
			if got[b] != want {
				t.Fatalf("n=%d row %d: batched margin %d != single %d", n, b, got[b], want)
			}
		}
	}
}

func TestStepBatchQMatchesStepQ(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randLSTMParams(rng)
	for _, n := range []int{1, 2, 5, 33} {
		// Give every row a distinct pre-existing state, then advance each
		// stream several timesteps so state divergence compounds.
		h := make([]int32, n*p.Hidden)
		c := make([]int32, n*p.Hidden)
		for i := range h {
			h[i] = int32(randQ(rng))
			c[i] = int32(randQ(rng))
		}
		refH := append([]int32(nil), h...)
		refC := append([]int32(nil), c...)
		for step := 0; step < 4; step++ {
			in := randWindows(rng, p.Window, p.Vocab, n)
			got := make([]int32, n)
			p.StepBatchQ(h, c, in, n, got)
			for b := 0; b < n; b++ {
				want := p.StepQ(refH[b*p.Hidden:(b+1)*p.Hidden], refC[b*p.Hidden:(b+1)*p.Hidden],
					in[b*p.Window:(b+1)*p.Window])
				if got[b] != want {
					t.Fatalf("n=%d step %d row %d: batched margin %d != single %d", n, step, b, got[b], want)
				}
			}
			for i := range h {
				if h[i] != refH[i] || c[i] != refC[i] {
					t.Fatalf("n=%d step %d: state word %d diverged (h %d/%d c %d/%d)",
						n, step, i, h[i], refH[i], c[i], refC[i])
				}
			}
		}
	}
}

// Benchmark the batched kernels against n repetitions of the single-row
// kernels at the deployment dimensions, which is exactly the trade the
// serving scheduler makes per micro-batch.
func benchParamsELM() *ELMParamsQ {
	rng := rand.New(rand.NewSource(1))
	p := &ELMParamsQ{Window: 9, Vocab: 32, Hidden: 80, SigLUT: SigmoidLUT()}
	p.B1 = randQVec(rng, p.Hidden)
	p.W1 = randQVec(rng, (p.Window-1)*p.Vocab*p.Hidden)
	p.Beta = randQVec(rng, p.Hidden*p.Vocab)
	return p
}

func benchParamsLSTM() *LSTMParamsQ {
	rng := rand.New(rand.NewSource(2))
	p := &LSTMParamsQ{Window: 16, Vocab: 64, Embed: 16, Hidden: 32,
		SigLUT: SigmoidLUT(), TanhLUT: TanhLUT()}
	p.PosW = randQVec(rng, p.Window-1)
	p.Emb = randQVec(rng, p.Vocab*p.Embed)
	p.Wg = randQVec(rng, NumGates*p.Hidden*(p.Embed+p.Hidden))
	p.Bg = randQVec(rng, NumGates*p.Hidden)
	p.OutW = randQVec(rng, p.Hidden*p.Vocab)
	p.OutB = randQVec(rng, p.Vocab)
	return p
}

const benchBatch = 32

func BenchmarkMarginQx32(b *testing.B) {
	p := benchParamsELM()
	rng := rand.New(rand.NewSource(3))
	in := randWindows(rng, p.Window, p.Vocab, benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < benchBatch; r++ {
			p.MarginQ(in[r*p.Window : (r+1)*p.Window])
		}
	}
}

func BenchmarkMarginBatchQ32(b *testing.B) {
	p := benchParamsELM()
	rng := rand.New(rand.NewSource(3))
	in := randWindows(rng, p.Window, p.Vocab, benchBatch)
	margins := make([]int32, benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MarginBatchQ(in, benchBatch, margins)
	}
}

func BenchmarkStepQx32(b *testing.B) {
	p := benchParamsLSTM()
	rng := rand.New(rand.NewSource(4))
	in := randWindows(rng, p.Window, p.Vocab, benchBatch)
	h := make([]int32, benchBatch*p.Hidden)
	c := make([]int32, benchBatch*p.Hidden)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < benchBatch; r++ {
			p.StepQ(h[r*p.Hidden:(r+1)*p.Hidden], c[r*p.Hidden:(r+1)*p.Hidden],
				in[r*p.Window:(r+1)*p.Window])
		}
	}
}

func BenchmarkStepBatchQ32(b *testing.B) {
	p := benchParamsLSTM()
	rng := rand.New(rand.NewSource(4))
	in := randWindows(rng, p.Window, p.Vocab, benchBatch)
	h := make([]int32, benchBatch*p.Hidden)
	c := make([]int32, benchBatch*p.Hidden)
	margins := make([]int32, benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StepBatchQ(h, c, in, benchBatch, margins)
	}
}
