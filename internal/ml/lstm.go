package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTMConfig sizes the branch-sequence model (after [8]): a single LSTM
// layer over embedded branch windows with a softmax next-class readout.
type LSTMConfig struct {
	Window int // IGM vector length; inputs = first Window-1, target = last
	Vocab  int // branch-class alphabet
	Embed  int // embedding width
	Hidden int
	Seed   int64
	// Training hyperparameters.
	Epochs   int
	LR       float64
	Truncate int // BPTT truncation length (in timesteps = vectors)
	Clip     float64
}

// DefaultLSTMConfig matches the RTAD deployment: 16-class branch windows
// over a 64-entry branch vocabulary, 16-wide embeddings, 32 hidden units
// (one gate per ML-MIAOW wavefront).
func DefaultLSTMConfig() LSTMConfig {
	return LSTMConfig{
		Window: 16, Vocab: 64, Embed: 16, Hidden: 32, Seed: 2,
		Epochs: 4, LR: 0.15, Truncate: 24, Clip: 4,
	}
}

// Gate indices (the order is frozen by the GPU memory layout).
const (
	GateI = iota
	GateF
	GateG
	GateO
	NumGates
)

// LSTM is a trained branch-behaviour model.
type LSTM struct {
	Cfg  LSTMConfig
	Emb  *Mat           // Vocab × Embed
	Wg   [NumGates]*Mat // Hidden × (Embed+Hidden)
	Bg   [NumGates][]float64
	OutW *Mat      // Vocab × Hidden
	OutB []float64 // Vocab
	// Threshold is the calibrated anomaly decision level.
	Threshold float64

	posW []float64 // cached PosWeights(Window)
}

// State is the recurrent state carried between inference steps; the RTAD
// deployment keeps it resident in ML-MIAOW memory between input vectors.
type State struct {
	H, C []float64
}

// NewState returns a zero state for the model.
func (m *LSTM) NewState() *State {
	return &State{H: make([]float64, m.Cfg.Hidden), C: make([]float64, m.Cfg.Hidden)}
}

// PosWeights returns the fixed recency weights applied to window positions:
// a normalised geometric decay so the most recent branch dominates the
// input encoding while older context still contributes. The weights are
// part of the model image consumed by the GPU kernel.
func PosWeights(window int) []float64 {
	n := window - 1
	w := make([]float64, n)
	var sum float64
	for j := 0; j < n; j++ {
		w[j] = math.Pow(0.6, float64(n-1-j))
		sum += w[j]
	}
	for j := range w {
		w[j] /= sum
	}
	return w
}

// embedWindow computes the recency-weighted sum of the window's input-class
// embeddings — the encoding the GPU kernel reproduces with a
// gather-multiply-accumulate loop over the position-weight table.
func (m *LSTM) embedWindow(w []int32) []float64 {
	if m.posW == nil {
		m.posW = PosWeights(m.Cfg.Window)
	}
	x := make([]float64, m.Cfg.Embed)
	pw := m.posW
	for j := 0; j < m.Cfg.Window-1; j++ {
		row := m.Emb.Row(int(w[j]))
		for e := range x {
			x[e] += row[e] * pw[j]
		}
	}
	return x
}

// step runs one LSTM cell update, returning the gate activations (for
// training) and updating st in place.
func (m *LSTM) step(st *State, x []float64) (gates [NumGates][]float64) {
	hid := m.Cfg.Hidden
	xh := make([]float64, m.Cfg.Embed+hid)
	copy(xh, x)
	copy(xh[m.Cfg.Embed:], st.H)
	for g := 0; g < NumGates; g++ {
		pre := m.Wg[g].MulVec(xh)
		act := make([]float64, hid)
		for r := 0; r < hid; r++ {
			v := pre[r] + m.Bg[g][r]
			if g == GateG {
				act[r] = math.Tanh(v)
			} else {
				act[r] = Sigmoid(v)
			}
		}
		gates[g] = act
	}
	for r := 0; r < hid; r++ {
		st.C[r] = gates[GateF][r]*st.C[r] + gates[GateI][r]*gates[GateG][r]
		st.H[r] = gates[GateO][r] * math.Tanh(st.C[r])
	}
	return gates
}

// Step consumes one IGM vector: it advances the recurrent state on the
// window's input part and returns the class logits predicting the target.
func (m *LSTM) Step(st *State, w []int32) ([]float64, error) {
	if len(w) != m.Cfg.Window {
		return nil, fmt.Errorf("ml: LSTM window length %d, want %d", len(w), m.Cfg.Window)
	}
	x := m.embedWindow(w)
	m.step(st, x)
	logits := m.OutW.MulVec(st.H)
	for v := range logits {
		logits[v] += m.OutB[v]
	}
	return logits, nil
}

// Score returns the anomaly margin (best logit minus target logit) for one
// vector, advancing the state.
func (m *LSTM) Score(st *State, w []int32) (float64, error) {
	logits, err := m.Step(st, w)
	if err != nil {
		return 0, err
	}
	target := w[m.Cfg.Window-1]
	if target < 0 || int(target) >= m.Cfg.Vocab {
		return 0, fmt.Errorf("ml: target class %d outside vocab", target)
	}
	best := logits[0]
	for _, v := range logits[1:] {
		if v > best {
			best = v
		}
	}
	return best - logits[target], nil
}

// TrainLSTM fits the model on a normal vector stream with truncated BPTT
// and Adagrad. vectors[t] is the IGM window at step t; the model learns to
// predict each window's target class from the recurrent context.
func TrainLSTM(cfg LSTMConfig, vectors [][]int32) (*LSTM, error) {
	if cfg.Window < 2 || cfg.Vocab < 2 || cfg.Embed < 1 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("ml: bad LSTM config %+v", cfg)
	}
	if len(vectors) < cfg.Truncate*2 {
		return nil, fmt.Errorf("ml: %d vectors is too little training data", len(vectors))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &LSTM{Cfg: cfg, posW: PosWeights(cfg.Window)}
	scale := 1.0 / math.Sqrt(float64(cfg.Embed+cfg.Hidden))
	m.Emb = NewMat(cfg.Vocab, cfg.Embed)
	m.Emb.Randomize(rng, 0.8)
	for g := 0; g < NumGates; g++ {
		m.Wg[g] = NewMat(cfg.Hidden, cfg.Embed+cfg.Hidden)
		m.Wg[g].Randomize(rng, scale)
		m.Bg[g] = make([]float64, cfg.Hidden)
	}
	// Forget-gate bias starts positive, the standard trick for stable
	// long-range training.
	for r := range m.Bg[GateF] {
		m.Bg[GateF][r] = 1
	}
	m.OutW = NewMat(cfg.Vocab, cfg.Hidden)
	m.OutW.Randomize(rng, scale)
	m.OutB = make([]float64, cfg.Vocab)

	tr := newLSTMTrainer(m)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		st := m.NewState()
		for start := 0; start+cfg.Truncate <= len(vectors); start += cfg.Truncate {
			tr.chunk(st, vectors[start:start+cfg.Truncate])
		}
	}
	return m, nil
}

// lstmTrainer holds Adagrad accumulators and scratch for BPTT.
type lstmTrainer struct {
	m *LSTM
	// Adagrad squared-gradient accumulators, same shapes as parameters.
	gEmb  *Mat
	gWg   [NumGates]*Mat
	gBg   [NumGates][]float64
	gOutW *Mat
	gOutB []float64
}

func newLSTMTrainer(m *LSTM) *lstmTrainer {
	tr := &lstmTrainer{m: m}
	tr.gEmb = NewMat(m.Emb.Rows, m.Emb.Cols)
	for g := 0; g < NumGates; g++ {
		tr.gWg[g] = NewMat(m.Wg[g].Rows, m.Wg[g].Cols)
		tr.gBg[g] = make([]float64, m.Cfg.Hidden)
	}
	tr.gOutW = NewMat(m.OutW.Rows, m.OutW.Cols)
	tr.gOutB = make([]float64, m.Cfg.Vocab)
	return tr
}

// adagrad applies one accumulated-gradient update to a parameter slice.
func (tr *lstmTrainer) adagrad(param, grad, accum []float64) {
	lr, clip := tr.m.Cfg.LR, tr.m.Cfg.Clip
	for i, g := range grad {
		if g > clip {
			g = clip
		} else if g < -clip {
			g = -clip
		}
		accum[i] += g * g
		param[i] -= lr * g / (math.Sqrt(accum[i]) + 1e-8)
	}
}

// chunk runs forward + backward over one truncation window, updating the
// parameters and carrying st forward.
func (tr *lstmTrainer) chunk(st *State, vectors [][]int32) {
	m := tr.m
	cfg := m.Cfg
	T := len(vectors)
	hid, emb := cfg.Hidden, cfg.Embed

	// Forward pass, recording everything backprop needs.
	xs := make([][]float64, T)
	hs := make([][]float64, T+1)
	cs := make([][]float64, T+1)
	var gates [NumGates][][]float64
	for g := range gates {
		gates[g] = make([][]float64, T)
	}
	probs := make([][]float64, T)
	hs[0] = append([]float64(nil), st.H...)
	cs[0] = append([]float64(nil), st.C...)
	run := *st
	for t, w := range vectors {
		xs[t] = m.embedWindow(w)
		gt := m.step(&run, xs[t])
		for g := 0; g < NumGates; g++ {
			gates[g][t] = gt[g]
		}
		hs[t+1] = append([]float64(nil), run.H...)
		cs[t+1] = append([]float64(nil), run.C...)
		logits := m.OutW.MulVec(run.H)
		maxl := math.Inf(-1)
		for v := range logits {
			logits[v] += m.OutB[v]
			if logits[v] > maxl {
				maxl = logits[v]
			}
		}
		var z float64
		p := make([]float64, cfg.Vocab)
		for v := range p {
			p[v] = math.Exp(logits[v] - maxl)
			z += p[v]
		}
		for v := range p {
			p[v] /= z
		}
		probs[t] = p
	}
	st.H, st.C = run.H, run.C

	// Gradient buffers.
	dEmb := NewMat(cfg.Vocab, emb)
	var dWg [NumGates]*Mat
	var dBg [NumGates][]float64
	for g := 0; g < NumGates; g++ {
		dWg[g] = NewMat(hid, emb+hid)
		dBg[g] = make([]float64, hid)
	}
	dOutW := NewMat(cfg.Vocab, hid)
	dOutB := make([]float64, cfg.Vocab)

	dhNext := make([]float64, hid)
	dcNext := make([]float64, hid)
	for t := T - 1; t >= 0; t-- {
		target := int(vectors[t][cfg.Window-1])
		// Softmax cross-entropy gradient on the logits.
		dlogit := append([]float64(nil), probs[t]...)
		dlogit[target] -= 1
		dh := append([]float64(nil), dhNext...)
		for v := 0; v < cfg.Vocab; v++ {
			dOutB[v] += dlogit[v]
			row := m.OutW.Row(v)
			drow := dOutW.Row(v)
			for r := 0; r < hid; r++ {
				drow[r] += dlogit[v] * hs[t+1][r]
				dh[r] += dlogit[v] * row[r]
			}
		}
		// Through h = o * tanh(c).
		dc := append([]float64(nil), dcNext...)
		dgate := [NumGates][]float64{}
		for g := range dgate {
			dgate[g] = make([]float64, hid)
		}
		for r := 0; r < hid; r++ {
			tc := math.Tanh(cs[t+1][r])
			o := gates[GateO][t][r]
			dgate[GateO][r] = dh[r] * tc * o * (1 - o)
			dc[r] += dh[r] * o * (1 - tc*tc)
			i := gates[GateI][t][r]
			f := gates[GateF][t][r]
			g := gates[GateG][t][r]
			dgate[GateI][r] = dc[r] * g * i * (1 - i)
			dgate[GateF][r] = dc[r] * cs[t][r] * f * (1 - f)
			dgate[GateG][r] = dc[r] * i * (1 - g*g)
			dcNext[r] = dc[r] * f
		}
		// Through the gate matmuls into weights, x and h(t-1).
		xh := make([]float64, emb+hid)
		copy(xh, xs[t])
		copy(xh[emb:], hs[t])
		dxh := make([]float64, emb+hid)
		for g := 0; g < NumGates; g++ {
			for r := 0; r < hid; r++ {
				dg := dgate[g][r]
				if dg == 0 {
					continue
				}
				dBg[g][r] += dg
				wrow := m.Wg[g].Row(r)
				drow := dWg[g].Row(r)
				for k := range xh {
					drow[k] += dg * xh[k]
					dxh[k] += dg * wrow[k]
				}
			}
		}
		copy(dhNext, dxh[emb:])
		// Into the embedding rows (scaled by the position weights).
		for j := 0; j < cfg.Window-1; j++ {
			row := dEmb.Row(int(vectors[t][j]))
			pw := m.posW[j]
			for e := 0; e < emb; e++ {
				row[e] += dxh[e] * pw
			}
		}
	}

	// Apply updates.
	tr.adagrad(m.Emb.Data, dEmb.Data, tr.gEmb.Data)
	for g := 0; g < NumGates; g++ {
		tr.adagrad(m.Wg[g].Data, dWg[g].Data, tr.gWg[g].Data)
		tr.adagrad(m.Bg[g], dBg[g], tr.gBg[g])
	}
	tr.adagrad(m.OutW.Data, dOutW.Data, tr.gOutW.Data)
	tr.adagrad(m.OutB, dOutB, tr.gOutB)
}
