// Package ml implements the two anomaly-detection models the paper deploys
// on RTAD — an Extreme Learning Machine trained on system-call windows
// (after [2]) and an LSTM trained on general branch sequences (after [8]) —
// together with the numeric substrate they need: dense matrices, a Cholesky
// ridge solver, LUT-based fixed-point activations matching the GPU kernels
// bit-for-bit, and threshold calibration on normal traces.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major float64 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero r×c matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("ml: invalid matrix shape %dx%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns m[i,j].
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Randomize fills m with uniform values in [-scale, scale] from rng.
func (m *Mat) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// MulVec returns m·x.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("ml: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out
}

// TransposeMul returns AᵀB, the Gram-style product used by the ELM ridge
// solve (A is N×k, B is N×m, result k×m).
func TransposeMul(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic("ml: TransposeMul row mismatch")
	}
	out := NewMat(a.Cols, b.Cols)
	for n := 0; n < a.Rows; n++ {
		ar := a.Row(n)
		br := b.Row(n)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range br {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// CholeskySolve solves (A + ridge·I)·X = B for X, where A is symmetric
// positive semi-definite (k×k) and B is k×m. It factors A = L·Lᵀ and
// back-substitutes. The ridge term both regularises the ELM output layer
// and guarantees positive definiteness.
func CholeskySolve(a *Mat, b *Mat, ridge float64) (*Mat, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("ml: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if b.Rows != a.Rows {
		return nil, fmt.Errorf("ml: solve shape mismatch A %dx%d, B %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += ridge
			}
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("ml: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Solve L·Y = B, then Lᵀ·X = Y, column by column.
	x := NewMat(b.Rows, b.Cols)
	y := make([]float64, n)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			sum := b.At(i, c)
			for k := 0; k < i; k++ {
				sum -= l.At(i, k) * y[k]
			}
			y[i] = sum / l.At(i, i)
		}
		for i := n - 1; i >= 0; i-- {
			sum := y[i]
			for k := i + 1; k < n; k++ {
				sum -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, sum/l.At(i, i))
		}
	}
	return x, nil
}
