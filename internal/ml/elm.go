package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ELMConfig sizes the Extreme Learning Machine. The model consumes a window
// of class IDs: the first Window-1 entries are the input context and the
// final entry is the prediction target, so a single IGM vector carries both.
type ELMConfig struct {
	Window int // total window length (inputs = Window-1)
	Vocab  int // class alphabet size
	Hidden int // hidden layer width
	Ridge  float64
	Seed   int64
}

// DefaultELMConfig matches the RTAD deployment: syscall windows of nine
// events over a 32-service alphabet, 80 hidden units (five 16-lane hidden
// slices — one per ML-MIAOW compute unit).
func DefaultELMConfig() ELMConfig {
	return ELMConfig{Window: 9, Vocab: 32, Hidden: 80, Ridge: 1e-2, Seed: 1}
}

// ELM is a trained model: a fixed random input expansion (W1, B1) and a
// ridge-regressed linear readout (BetaT) predicting the next class.
type ELM struct {
	Cfg   ELMConfig
	W1    *Mat      // Hidden × (Window-1)·Vocab, random, frozen
	B1    []float64 // Hidden
	BetaT *Mat      // Vocab × Hidden (readout, transposed for MulVec)
	// Threshold is the anomaly decision level on the margin score,
	// calibrated on normal traces (see CalibrateThreshold).
	Threshold float64
}

// validateWindow checks a window against the model shape.
func validateWindow(cfg ELMConfig, w []int32) error {
	if len(w) != cfg.Window {
		return fmt.Errorf("ml: window length %d, want %d", len(w), cfg.Window)
	}
	for _, c := range w {
		if c < 0 || int(c) >= cfg.Vocab {
			return fmt.Errorf("ml: class %d outside vocab %d", c, cfg.Vocab)
		}
	}
	return nil
}

// Hidden computes the hidden activation for the window's input part. The
// input encoding is positional one-hot, so the matvec degenerates to a
// gather-accumulate over W1 columns — the same access pattern the GPU
// kernel uses.
func (m *ELM) Hidden(w []int32) []float64 {
	h := make([]float64, m.Cfg.Hidden)
	copy(h, m.B1)
	for j := 0; j < m.Cfg.Window-1; j++ {
		col := j*m.Cfg.Vocab + int(w[j])
		for r := 0; r < m.Cfg.Hidden; r++ {
			h[r] += m.W1.At(r, col)
		}
	}
	for r := range h {
		h[r] = Sigmoid(h[r])
	}
	return h
}

// Logits returns the class scores for the window's input part.
func (m *ELM) Logits(w []int32) []float64 {
	return m.BetaT.MulVec(m.Hidden(w))
}

// Score returns the anomaly margin for a full window: the gap between the
// best class score and the score of the class that actually occurred. A
// model that anticipated the event scores near zero; a surprised model
// scores high. The margin is monotone in the softmax NLL but needs no
// exponentials, which is what lets the GPU kernel compute it exactly.
func (m *ELM) Score(w []int32) float64 {
	logits := m.Logits(w)
	target := w[m.Cfg.Window-1]
	best := logits[0]
	for _, v := range logits[1:] {
		if v > best {
			best = v
		}
	}
	return best - logits[target]
}

// TrainELM fits the readout on normal windows: the random expansion is
// frozen and Beta solves the ridge-regularised least-squares problem
// (HᵀH + λI)·Beta = Hᵀ·T against one-hot next-class targets — the
// closed-form training that makes ELMs "more lightweight than a
// traditional MLP" (§IV-C).
func TrainELM(cfg ELMConfig, windows [][]int32) (*ELM, error) {
	if cfg.Window < 2 || cfg.Vocab < 2 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("ml: bad ELM config %+v", cfg)
	}
	if len(windows) < cfg.Hidden {
		return nil, fmt.Errorf("ml: %d training windows for %d hidden units — underdetermined", len(windows), cfg.Hidden)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &ELM{
		Cfg: cfg,
		W1:  NewMat(cfg.Hidden, (cfg.Window-1)*cfg.Vocab),
		B1:  make([]float64, cfg.Hidden),
	}
	// Scale the random expansion so pre-activations land in the sigmoid's
	// useful range given Window-1 active inputs.
	m.W1.Randomize(rng, 1.2)
	for i := range m.B1 {
		m.B1[i] = (rng.Float64()*2 - 1) * 0.5
	}

	h := NewMat(len(windows), cfg.Hidden)
	targets := NewMat(len(windows), cfg.Vocab)
	for n, w := range windows {
		if err := validateWindow(cfg, w); err != nil {
			return nil, err
		}
		copy(h.Row(n), m.Hidden(w))
		targets.Set(n, int(w[cfg.Window-1]), 1)
	}
	gram := TransposeMul(h, h)
	rhs := TransposeMul(h, targets)
	beta, err := CholeskySolve(gram, rhs, cfg.Ridge)
	if err != nil {
		return nil, fmt.Errorf("ml: ELM solve: %w", err)
	}
	// beta is Hidden × Vocab; store the transpose for row-major readout.
	m.BetaT = NewMat(cfg.Vocab, cfg.Hidden)
	for r := 0; r < beta.Rows; r++ {
		for c := 0; c < beta.Cols; c++ {
			m.BetaT.Set(c, r, beta.At(r, c))
		}
	}
	return m, nil
}

// CalibrateThreshold picks a decision level from normal-trace scores: the
// given quantile plus a safety margin. quantile=1 uses the maximum.
func CalibrateThreshold(scores []float64, quantile, margin float64) float64 {
	if len(scores) == 0 {
		return margin
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	idx := int(quantile*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx] + margin
}

// Perplexity reports exp(mean NLL) of the model's next-class predictions
// over windows — the model-quality number used when comparing detectors
// (lower is better; Vocab is the uninformed ceiling).
func (m *ELM) Perplexity(windows [][]int32) float64 {
	if len(windows) == 0 {
		return 0
	}
	var nll float64
	for _, w := range windows {
		logits := m.Logits(w)
		maxl := math.Inf(-1)
		for _, v := range logits {
			if v > maxl {
				maxl = v
			}
		}
		var z float64
		for _, v := range logits {
			z += math.Exp(v - maxl)
		}
		target := logits[w[m.Cfg.Window-1]]
		nll += math.Log(z) + maxl - target
	}
	return math.Exp(nll / float64(len(windows)))
}
