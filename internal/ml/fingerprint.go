package ml

import "math"

// Model fingerprints give a trained model a stable content identity: two
// models hash equal exactly when their deployed images — configuration,
// weights, threshold — are bit-identical. The model registry uses them to
// recognise a re-loaded file as a version it already holds, and operators
// use them to tell "same weights, new file" from a genuine retrain.

// fnv64 is FNV-1a over 64-bit words (the weight images are float64 /
// int-shaped, so hashing whole words avoids a byte-serialisation pass).
type fnv64 uint64

const (
	fnvOffset64 fnv64 = 14695981039346656037
	fnvPrime64  fnv64 = 1099511628211
)

func (h fnv64) word(w uint64) fnv64 {
	for i := 0; i < 64; i += 8 {
		h ^= fnv64(byte(w >> i))
		h *= fnvPrime64
	}
	return h
}

func (h fnv64) int(v int) fnv64       { return h.word(uint64(int64(v))) }
func (h fnv64) float(v float64) fnv64 { return h.word(math.Float64bits(v)) }

func (h fnv64) floats(vs []float64) fnv64 {
	h = h.int(len(vs))
	for _, v := range vs {
		h = h.float(v)
	}
	return h
}

func (h fnv64) mat(m *Mat) fnv64 {
	if m == nil {
		return h.int(-1)
	}
	h = h.int(m.Rows).int(m.Cols)
	return h.floats(m.Data)
}

// Fingerprint returns the ELM's content identity: a 64-bit FNV-1a hash over
// the model shape, the frozen expansion, the readout, and the calibrated
// threshold.
func (m *ELM) Fingerprint() uint64 {
	h := fnvOffset64.
		int(m.Cfg.Window).int(m.Cfg.Vocab).int(m.Cfg.Hidden).
		float(m.Cfg.Ridge).
		mat(m.W1).floats(m.B1).mat(m.BetaT).
		float(m.Threshold)
	return uint64(h)
}

// Fingerprint returns the LSTM's content identity: a 64-bit FNV-1a hash
// over the model shape, every gate's weights and biases, the embedding and
// readout, and the calibrated threshold.
func (m *LSTM) Fingerprint() uint64 {
	h := fnvOffset64.
		int(m.Cfg.Window).int(m.Cfg.Vocab).int(m.Cfg.Embed).int(m.Cfg.Hidden).
		mat(m.Emb)
	for g := 0; g < int(NumGates); g++ {
		h = h.mat(m.Wg[g]).floats(m.Bg[g])
	}
	h = h.mat(m.OutW).floats(m.OutB).float(m.Threshold)
	return uint64(h)
}
