package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// TrainMLP fits the *traditional multi-layer perceptron* the paper
// positions the ELM against (§IV-C: "The ELM model is more lightweight
// than a traditional MLP while providing similar accuracy"). The topology
// and deployment shape are identical to the ELM — positional one-hot
// window in, sigmoid hidden layer, linear class readout — so the returned
// model runs on the very same GPU kernels; the difference is training:
// every weight is learned by softmax-cross-entropy backpropagation over
// multiple epochs, instead of the ELM's one-shot ridge solve over a frozen
// random expansion. The cost asymmetry (epochs of full backprop vs one
// Cholesky factorisation) is the paper's "lightweight" claim, measured by
// BenchmarkAblationELMvsMLP.
func TrainMLP(cfg ELMConfig, windows [][]int32, epochs int, lr float64) (*ELM, error) {
	if cfg.Window < 2 || cfg.Vocab < 2 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("ml: bad MLP config %+v", cfg)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("ml: no MLP training data")
	}
	if epochs <= 0 {
		epochs = 10
	}
	if lr <= 0 {
		lr = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := &ELM{
		Cfg:   cfg,
		W1:    NewMat(cfg.Hidden, (cfg.Window-1)*cfg.Vocab),
		B1:    make([]float64, cfg.Hidden),
		BetaT: NewMat(cfg.Vocab, cfg.Hidden),
	}
	m.W1.Randomize(rng, 0.5)
	m.BetaT.Randomize(rng, 1.0/math.Sqrt(float64(cfg.Hidden)))

	for _, w := range windows {
		if err := validateWindow(cfg, w); err != nil {
			return nil, err
		}
	}
	order := rng.Perm(len(windows))
	h := make([]float64, cfg.Hidden)
	probs := make([]float64, cfg.Vocab)
	dh := make([]float64, cfg.Hidden)

	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			w := windows[idx]
			target := int(w[cfg.Window-1])

			// Forward: gather-sum the active W1 columns, sigmoid, readout.
			copy(h, m.B1)
			for j := 0; j < cfg.Window-1; j++ {
				col := j*cfg.Vocab + int(w[j])
				for r := 0; r < cfg.Hidden; r++ {
					h[r] += m.W1.At(r, col)
				}
			}
			for r := range h {
				h[r] = Sigmoid(h[r])
			}
			maxl := math.Inf(-1)
			for v := 0; v < cfg.Vocab; v++ {
				probs[v] = 0
				row := m.BetaT.Row(v)
				for r := 0; r < cfg.Hidden; r++ {
					probs[v] += row[r] * h[r]
				}
				if probs[v] > maxl {
					maxl = probs[v]
				}
			}
			var z float64
			for v := range probs {
				probs[v] = math.Exp(probs[v] - maxl)
				z += probs[v]
			}
			for v := range probs {
				probs[v] /= z
			}

			// Backward: softmax CE into the readout, then the hidden layer.
			for r := range dh {
				dh[r] = 0
			}
			for v := 0; v < cfg.Vocab; v++ {
				d := probs[v]
				if v == target {
					d -= 1
				}
				row := m.BetaT.Row(v)
				for r := 0; r < cfg.Hidden; r++ {
					dh[r] += d * row[r]
					row[r] -= lr * d * h[r]
				}
			}
			for r := 0; r < cfg.Hidden; r++ {
				g := dh[r] * h[r] * (1 - h[r])
				m.B1[r] -= lr * g
				for j := 0; j < cfg.Window-1; j++ {
					col := j*cfg.Vocab + int(w[j])
					m.W1.Set(r, col, m.W1.At(r, col)-lr*g)
				}
			}
		}
	}
	return m, nil
}

// Accuracy reports top-1 next-class prediction accuracy over windows, the
// quantity the ELM-vs-MLP comparison holds fixed.
func (m *ELM) Accuracy(windows [][]int32) float64 {
	if len(windows) == 0 {
		return 0
	}
	correct := 0
	for _, w := range windows {
		logits := m.Logits(w)
		best := 0
		for v := range logits {
			if logits[v] > logits[best] {
				best = v
			}
		}
		if int32(best) == w[m.Cfg.Window-1] {
			correct++
		}
	}
	return float64(correct) / float64(len(windows))
}
