package ml

import (
	"math"

	"rtad/internal/gpu"
)

// Fixed-point helpers. Model parameters are quantised to the GPU's Q16.16
// format; the Go fixed-point reference inference in this package uses
// exactly the same arithmetic as the kernels so results can be compared
// bit-for-bit.

// ToQ converts x to Q16.16 with saturation.
func ToQ(x float64) int32 {
	v := math.Round(x * float64(gpu.QOne))
	switch {
	case v > math.MaxInt32:
		return math.MaxInt32
	case v < math.MinInt32:
		return math.MinInt32
	}
	return int32(v)
}

// FromQ converts a Q16.16 value to float64.
func FromQ(q int32) float64 { return float64(q) / float64(gpu.QOne) }

// QuantizeVec converts a float slice to Q16.16 words.
func QuantizeVec(xs []float64) []uint32 {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		out[i] = uint32(ToQ(x))
	}
	return out
}

// Activation LUT parameters shared by trainer, reference inference and the
// GPU kernels: index = clamp((q >> LUTShift) + LUTSize/2, 0, LUTSize-1),
// covering pre-activations in [-8, 8) with 1/16 steps.
const (
	LUTSize  = 256
	LUTShift = 12 // 2^12 Q-units per LUT step = 1/16 in real terms
)

// LUTIndex computes the table index for pre-activation q, in the exact
// integer arithmetic the kernels use (round via half-bin bias, arithmetic
// shift, add, clamp). int64 intermediate avoids overflow near MaxInt32.
func LUTIndex(q int32) int32 {
	idx := int32((int64(q)+1<<(LUTShift-1))>>LUTShift) + LUTSize/2
	if idx < 0 {
		idx = 0
	}
	if idx >= LUTSize {
		idx = LUTSize - 1
	}
	return idx
}

// lutInput is the real-valued pre-activation at the centre of LUT bin i.
func lutInput(i int) float64 {
	return (float64(i) - LUTSize/2) / 16.0
}

// SigmoidLUT returns the Q16.16 sigmoid table.
func SigmoidLUT() []uint32 {
	out := make([]uint32, LUTSize)
	for i := range out {
		out[i] = uint32(ToQ(1.0 / (1.0 + math.Exp(-lutInput(i)))))
	}
	return out
}

// TanhLUT returns the Q16.16 tanh table.
func TanhLUT() []uint32 {
	out := make([]uint32, LUTSize)
	for i := range out {
		out[i] = uint32(ToQ(math.Tanh(lutInput(i))))
	}
	return out
}

// SigmoidQ applies the LUT sigmoid to a Q16.16 pre-activation, matching the
// kernel's ds/flat gather semantics.
func SigmoidQ(lut []uint32, q int32) int32 { return int32(lut[LUTIndex(q)]) }

// TanhQ applies the LUT tanh.
func TanhQ(lut []uint32, q int32) int32 { return int32(lut[LUTIndex(q)]) }

// Sigmoid is the float reference activation.
func Sigmoid(x float64) float64 { return 1.0 / (1.0 + math.Exp(-x)) }
