package ml

import (
	"math/rand"
	"testing"
	"time"
)

func TestMLPMatchesELMAccuracy(t *testing.T) {
	cfg := DefaultELMConfig()
	train := markovWindows(cfg.Vocab, cfg.Window, 3000, 61)
	test := markovWindows(cfg.Vocab, cfg.Window, 800, 62)

	elmStart := time.Now()
	elm, err := TrainELM(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	elmTime := time.Since(elmStart)

	mlpStart := time.Now()
	mlp, err := TrainMLP(cfg, train, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	mlpTime := time.Since(mlpStart)

	accELM := elm.Accuracy(test)
	accMLP := mlp.Accuracy(test)
	t.Logf("accuracy: ELM %.3f (train %v), MLP %.3f (train %v)", accELM, elmTime, accMLP, mlpTime)

	// Both must beat chance decisively (the chain is learnable).
	chance := 1.0 / float64(cfg.Vocab)
	if accELM < 4*chance || accMLP < 4*chance {
		t.Errorf("models failed to learn: ELM %.3f, MLP %.3f (chance %.3f)", accELM, accMLP, chance)
	}
	// "Similar accuracy": within a reasonable band of each other.
	if accMLP < accELM*0.7 {
		t.Errorf("MLP accuracy %.3f far below ELM %.3f", accMLP, accELM)
	}
	// The paper's lightweight claim: the ELM's one-shot solve is much
	// cheaper than epochs of backprop.
	if elmTime*2 > mlpTime {
		t.Logf("note: ELM train %v not clearly cheaper than MLP %v on this machine", elmTime, mlpTime)
	}
}

func TestMLPDeploysOnSameShape(t *testing.T) {
	cfg := DefaultELMConfig()
	mlp, err := TrainMLP(cfg, markovWindows(cfg.Vocab, cfg.Window, 300, 9), 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Identical deployment surface: same matrices and scoring path.
	if mlp.W1.Rows != cfg.Hidden || mlp.BetaT.Rows != cfg.Vocab {
		t.Fatal("MLP shape differs from the deployed kernel shape")
	}
	w := markovWindows(cfg.Vocab, cfg.Window, 1, 10)[0]
	if s := mlp.Score(w); s < 0 {
		t.Errorf("margin score %g negative", s)
	}
}

func TestMLPValidation(t *testing.T) {
	cfg := DefaultELMConfig()
	if _, err := TrainMLP(cfg, nil, 2, 0.1); err == nil {
		t.Error("no data accepted")
	}
	bad := markovWindows(cfg.Vocab, cfg.Window, 10, 1)
	bad[3][2] = -1
	if _, err := TrainMLP(cfg, bad, 2, 0.1); err == nil {
		t.Error("invalid class accepted")
	}
	cfg.Hidden = 0
	if _, err := TrainMLP(cfg, bad, 2, 0.1); err == nil {
		t.Error("bad config accepted")
	}
}

func TestPerplexityOrdering(t *testing.T) {
	cfg := DefaultELMConfig()
	train := markovWindows(cfg.Vocab, cfg.Window, 2000, 71)
	test := markovWindows(cfg.Vocab, cfg.Window, 400, 72)
	m, err := TrainELM(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	pp := m.Perplexity(test)
	if pp <= 1 || pp >= float64(cfg.Vocab) {
		t.Errorf("perplexity %.2f outside (1, vocab)", pp)
	}
	// Random windows must be more surprising than the chain.
	rng := rand.New(rand.NewSource(4))
	randW := make([][]int32, 400)
	for i := range randW {
		w := make([]int32, cfg.Window)
		for j := range w {
			w[j] = int32(rng.Intn(cfg.Vocab))
		}
		randW[i] = w
	}
	if rp := m.Perplexity(randW); rp <= pp {
		t.Errorf("random perplexity %.2f not above normal %.2f", rp, pp)
	}
	if m.Perplexity(nil) != 0 {
		t.Error("empty perplexity not zero")
	}
}
