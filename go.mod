module rtad

go 1.22
