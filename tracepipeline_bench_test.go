// Trace-pipeline microbenchmarks: the fused analytic PTM→TPIU→IGM fast
// path introduced alongside the staged byte/word reference, stage by stage
// and end to end. Like frontend_bench_test.go, every benchmark asserts its
// steady-state allocation contract (0 allocs/op) before the timed loop, so
// the CI perf-smoke job's -benchtime 1x pass catches a regression on the
// per-branch hot path — including the Fig 6 OverheadSink collection path.
//
// The ChainFused/ChainStaged pair measures the same per-branch work on both
// trace paths; their ns/op ratio is the per-branch view of the
// trace_fastpath_speedup section in BENCH_backends.json.
package rtad

import (
	"testing"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/igm"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// BenchmarkTracePipelinePort measures the fused port's byte accounting:
// PushCounted keeps occupancy and a departure schedule without ever
// materialising per-byte TimedByte records.
func BenchmarkTracePipelinePort(b *testing.B) {
	p := ptm.NewPort(ptm.PortConfig{})
	var at sim.Time
	push := func() {
		at += 80 * sim.Nanosecond
		p.PushCounted(at, 3)
	}
	for i := 0; i < 4096; i++ { // warm-up: cross several release thresholds
		push()
	}
	assertZeroAlloc(b, "PushCounted", push)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push()
	}
	b.SetBytes(3)
}

// BenchmarkTracePipelineFormatter measures the fused formatter: PushCounted
// converts a release's byte count and departure schedule straight into
// per-frame emission beats, appending into a recycled FrameEmit buffer.
func BenchmarkTracePipelineFormatter(b *testing.B) {
	f := tpiu.NewFormatter(tpiu.Config{})
	var fes []tpiu.FrameEmit
	var at sim.Time
	step := sim.FabricClock.Period()
	push := func() {
		at += 200 * sim.Nanosecond
		fes = f.PushCounted(at, step, 4, tpiu.PayloadBytes, fes[:0])
	}
	for i := 0; i < 256; i++ { // warm-up: settle the FrameEmit buffer
		push()
	}
	assertZeroAlloc(b, "PushCounted", push)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push()
	}
	b.SetBytes(tpiu.PayloadBytes)
}

// BenchmarkTracePipelineIGM measures the IGM's direct entry points — the
// fused path's replacement for word feeding and re-decoding: a frame
// arrival, a decoded branch admitted through the flat mapper into the ring
// window, and the vector hand-off with Classes recycling.
func BenchmarkTracePipelineIGM(b *testing.B) {
	mapper := igm.NewAddressMap()
	const addr = 0x8040
	mapper.Add(addr)
	class, ok := mapper.Lookup(addr)
	if !ok {
		b.Fatal("benchmark address not mapped")
	}
	g := igm.New(igm.Config{Mapper: mapper, Window: 16, Stride: 1})
	var at sim.Time
	var vecs []igm.Vector
	frame := func() {
		at += 200 * sim.Nanosecond
		decodeAt := g.FrameArrived(at)
		g.PacketDecoded() // the frame's non-branch packet (sync, atoms)
		g.BranchDecoded(decodeAt, addr, class, true)
		vecs = g.TakeInto(vecs[:0])
		for _, v := range vecs {
			g.Recycle(v.Classes)
		}
	}
	for i := 0; i < 4096; i++ { // warm-up: fill the window, pool a Classes buffer
		frame()
	}
	assertZeroAlloc(b, "FrameArrived+BranchDecoded+TakeInto", frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame()
	}
}

// chainBench drives core.Pipeline.BranchRetired with mapper-filtered targets
// (the common case) on one trace path, asserting the per-branch zero-alloc
// contract before timing. Same event stream as BenchmarkFrontendChain.
func chainBench(b *testing.B, staged bool) {
	dep := lstmDeployment(b)
	p, err := core.NewPipeline(dep, core.PipelineConfig{
		CUs: 5, Stride: 256, Backend: "native-calibrated", StagedTrace: staged,
	})
	if err != nil {
		b.Fatal(err)
	}
	const filtered = 0xDEAD0000
	var cycle int64
	branch := func() {
		cycle += 20
		p.BranchRetired(cpu.BranchEvent{
			PC: 0x8000, Target: filtered, Kind: cpu.KindDirect, Taken: true, Cycle: cycle,
		})
	}
	for i := 0; i < 20000; i++ { // warm-up: settle every stage buffer
		branch()
	}
	assertZeroAlloc(b, "BranchRetired(filtered)", branch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		branch()
	}
	if p.Err() != nil {
		b.Fatal(p.Err())
	}
}

// BenchmarkTracePipelineChainFused is the whole per-branch front-end on the
// fused analytic path (the default): encode with packet marks → counted port
// → counted formatter → IGM direct delivery.
func BenchmarkTracePipelineChainFused(b *testing.B) { chainBench(b, false) }

// BenchmarkTracePipelineChainStaged is the same stream on the staged
// byte/word reference path: per-byte port release → byte-at-a-time framing →
// word deframing → packet re-decode.
func BenchmarkTracePipelineChainStaged(b *testing.B) { chainBench(b, true) }

// BenchmarkTracePipelineOverheadSink measures the Fig 6 collection path:
// OverheadSink.BranchRetired (recycled EncodeInto buffer, counted stall
// accounting) with the port drained through a recycled TakeInto buffer, as
// the overhead experiment does.
func BenchmarkTracePipelineOverheadSink(b *testing.B) {
	s := ptm.NewOverheadSink(ptm.Config{BranchBroadcast: true}, ptm.PortConfig{})
	var tb []ptm.TimedByte
	var cycle int64
	branch := func() {
		cycle += 20
		s.BranchRetired(cpu.BranchEvent{
			PC: 0x8000, Target: 0x8000 + uint32(cycle%64)*4,
			Kind: cpu.KindDirect, Taken: true, Cycle: cycle,
		})
		tb = s.Port.TakeInto(tb[:0])
	}
	for i := 0; i < 20000; i++ { // warm-up: cross sync boundaries and drains
		branch()
	}
	assertZeroAlloc(b, "OverheadSink.BranchRetired", branch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		branch()
	}
}
