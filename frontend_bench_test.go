// Front-end microbenchmarks: the per-branch co-simulation hot path this
// repo's zero-allocation refactor targets. Each benchmark asserts its
// steady-state allocation contract (0 allocs/op) before timing, so a
// regression fails the benchmark rather than silently shifting numbers;
// the CI perf-smoke job runs them at -benchtime 1x for exactly that check.
//
// BENCH_frontend.json records the committed baseline (see EXPERIMENTS.md
// for methodology and `go run ./cmd/benchinfo -bench-file BENCH_frontend.json`
// for a rendering).
package rtad

import (
	"testing"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// assertZeroAlloc fails the benchmark if fn allocates in steady state.
// It runs outside the timed region.
func assertZeroAlloc(b *testing.B, what string, fn func()) {
	b.Helper()
	if allocs := testing.AllocsPerRun(200, fn); allocs > 0 {
		b.Fatalf("%s allocates %.2f objects/op in steady state, want 0", what, allocs)
	}
}

// BenchmarkFrontendEncode measures the PTM packetisation hot path:
// EncodeInto with a recycled buffer, branch-broadcast configuration,
// crossing periodic-sync boundaries.
func BenchmarkFrontendEncode(b *testing.B) {
	e := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var buf []byte
	var cycle int64
	next := func() cpu.BranchEvent {
		cycle += 10
		return cpu.BranchEvent{
			PC: 0x8000, Target: 0x8000 + uint32(cycle%64)*4,
			Kind: cpu.KindDirect, Taken: true, Cycle: cycle,
		}
	}
	for i := 0; i < 4096; i++ { // warm-up: settle buffer capacity
		buf = e.EncodeInto(buf[:0], next())
	}
	assertZeroAlloc(b, "EncodeInto", func() { buf = e.EncodeInto(buf[:0], next()) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.EncodeInto(buf[:0], next())
	}
}

// BenchmarkFrontendDecode measures the byte-at-a-time PTM decoder on a
// representative mixed stream (address packets, atoms, periodic syncs).
func BenchmarkFrontendDecode(b *testing.B) {
	e := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var stream []byte
	var cycle int64
	for i := 0; i < 65536; i++ {
		cycle += 10
		stream = e.EncodeInto(stream, cpu.BranchEvent{
			PC: 0x8000, Target: 0x8000 + uint32(i%128)*4,
			Kind: cpu.KindDirect, Taken: i%4 != 0, Cycle: cycle,
		})
	}
	d := ptm.NewStreamDecoder()
	i := 0
	feed := func() {
		d.FeedByte(stream[i])
		i++
		if i == len(stream) {
			i = 0
		}
	}
	for j := 0; j < 4096; j++ { // warm-up
		feed()
	}
	assertZeroAlloc(b, "FeedByte", feed)
	b.ReportAllocs()
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		feed()
	}
	b.SetBytes(1)
}

// BenchmarkFrontendScheduler measures the dominant scheduling pattern —
// post at now+Δ, pop immediately — which stays entirely in the scheduler's
// monotone fast lane.
func BenchmarkFrontendScheduler(b *testing.B) {
	s := sim.NewScheduler()
	nop := func() {}
	for i := 0; i < 4096; i++ { // warm-up: settle lane capacity
		s.After(8, nop)
		s.Step()
	}
	assertZeroAlloc(b, "schedule+step", func() {
		s.After(8, nop)
		s.Step()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(8, nop)
		s.Step()
	}
}

// BenchmarkFrontendChain measures the whole per-branch front-end — encode →
// port → TPIU framing → deframe → decode → address map — through
// core.Pipeline.BranchRetired, with targets the mapper filters (the common
// case: the IGM table admits only monitored addresses, so most branches end
// at the mapper without emitting a vector).
func BenchmarkFrontendChain(b *testing.B) {
	dep := lstmDeployment(b)
	p, err := core.NewPipeline(dep, core.PipelineConfig{
		CUs: 5, Stride: 256, Backend: "native-calibrated",
	})
	if err != nil {
		b.Fatal(err)
	}
	const filtered = 0xDEAD0000
	var cycle int64
	branch := func() {
		cycle += 20
		p.BranchRetired(cpu.BranchEvent{
			PC: 0x8000, Target: filtered, Kind: cpu.KindDirect, Taken: true, Cycle: cycle,
		})
	}
	for i := 0; i < 20000; i++ { // warm-up: settle every stage buffer
		branch()
	}
	assertZeroAlloc(b, "BranchRetired(filtered)", branch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		branch()
	}
	if p.Err() != nil {
		b.Fatal(p.Err())
	}
}

// BenchmarkFrontendFormatter measures TPIU frame packing plus the word
// hand-off through a recycled TakeInto buffer.
func BenchmarkFrontendFormatter(b *testing.B) {
	f := tpiu.NewFormatter(tpiu.Config{})
	var out []tpiu.TimedWord
	var at sim.Time
	frame := func() {
		for i := 0; i < tpiu.PayloadBytes; i++ {
			at += 1000
			f.Push(at, byte(i))
		}
		out = f.TakeInto(out[:0])
	}
	for i := 0; i < 256; i++ { // warm-up
		frame()
	}
	assertZeroAlloc(b, "frame+TakeInto", frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame()
	}
	b.SetBytes(tpiu.PayloadBytes)
}
